"""Truth tables and cube (SOP) manipulation.

NullaNet's FFCL generation works at the truth-table level: a binary neuron's
activation function over its (binarized) inputs is a Boolean function, which
is minimized into a sum-of-products and then factored into multi-level logic.
This module provides:

* :class:`TruthTable` — a complete function table with an optional care set
  (don't-cares arise from input patterns never observed in the training
  data, which is the key NullaNet optimization),
* :class:`Cube` — a product term over n variables (mask/value encoding),
* conversions graph -> table (bit-parallel cofactor enumeration) and
  SOP -> graph (balanced AND/OR trees over the cell library).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..netlist import cells
from ..netlist.graph import LogicGraph

#: Enumerating a table costs 2^n bits of work and memory; beyond ~20 inputs
#: NullaNet itself switches to sampled care sets, and so do we.
MAX_ENUM_VARS = 20


@dataclass(frozen=True)
class Cube:
    """A product term over ``num_vars`` variables.

    ``mask`` bit i set means variable i appears in the product; ``value``
    bit i (meaningful only where mask is set) gives its polarity (1 =
    positive literal).  The all-don't-care cube (mask == 0) is the constant
    1 product.
    """

    mask: int
    value: int

    def __post_init__(self) -> None:
        if self.value & ~self.mask:
            raise ValueError("value bits outside the mask")

    def num_literals(self) -> int:
        return bin(self.mask).count("1")

    def contains_minterm(self, minterm: int) -> bool:
        return (minterm & self.mask) == self.value

    def contains_cube(self, other: "Cube") -> bool:
        """True if every minterm of ``other`` is a minterm of this cube."""
        if self.mask & ~other.mask:
            return False
        return (other.value & self.mask) == self.value

    def intersects(self, other: "Cube") -> bool:
        common = self.mask & other.mask
        return (self.value & common) == (other.value & common)

    def without_literal(self, var: int) -> "Cube":
        bit = 1 << var
        return Cube(self.mask & ~bit, self.value & ~bit)

    def literals(self) -> List[tuple]:
        """List of (variable index, polarity) pairs."""
        out = []
        mask = self.mask
        var = 0
        while mask:
            if mask & 1:
                out.append((var, (self.value >> var) & 1))
            mask >>= 1
            var += 1
        return out

    def __str__(self) -> str:
        if not self.mask:
            return "1"
        return "".join(
            f"x{v}" if pol else f"~x{v}" for v, pol in self.literals()
        )


class TruthTable:
    """A Boolean function of ``num_vars`` inputs with an optional care set.

    ``on_bits[i]`` is the function value at minterm ``i`` (variable 0 is the
    least-significant index bit).  ``care_bits[i]`` False marks minterm ``i``
    as a don't-care: minimizers may assign it either value.
    """

    def __init__(
        self,
        num_vars: int,
        on_bits: np.ndarray,
        care_bits: Optional[np.ndarray] = None,
    ) -> None:
        if num_vars < 0 or num_vars > MAX_ENUM_VARS:
            raise ValueError(f"num_vars must be in [0, {MAX_ENUM_VARS}]")
        size = 1 << num_vars
        on = np.asarray(on_bits, dtype=bool)
        if on.shape != (size,):
            raise ValueError(f"on_bits must have shape ({size},)")
        if care_bits is None:
            care = np.ones(size, dtype=bool)
        else:
            care = np.asarray(care_bits, dtype=bool)
            if care.shape != (size,):
                raise ValueError(f"care_bits must have shape ({size},)")
        self.num_vars = num_vars
        self.on_bits = on & care  # normalize: don't-care entries read as 0
        self.care_bits = care

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_minterms(
        cls,
        num_vars: int,
        minterms: Iterable[int],
        dont_cares: Iterable[int] = (),
    ) -> "TruthTable":
        size = 1 << num_vars
        on = np.zeros(size, dtype=bool)
        care = np.ones(size, dtype=bool)
        for m in minterms:
            if not 0 <= m < size:
                raise ValueError(f"minterm {m} out of range")
            on[m] = True
        for d in dont_cares:
            if not 0 <= d < size:
                raise ValueError(f"don't-care {d} out of range")
            care[d] = False
        return cls(num_vars, on, care)

    @classmethod
    def from_graph(cls, graph: LogicGraph, output: Optional[str] = None) -> "TruthTable":
        """Enumerate the function computed by one PO of ``graph``.

        Uses bit-parallel evaluation: all 2^n input rows are packed into
        uint64 words and the graph is evaluated once.
        """
        n = graph.num_inputs
        if n > MAX_ENUM_VARS:
            raise ValueError(f"too many inputs to enumerate ({n})")
        if output is None:
            if graph.num_outputs != 1:
                raise ValueError("output name required for multi-output graph")
            output = graph.outputs[0][0]
        rows = 1 << n
        words = max(1, rows // 64)
        packed = {}
        for i, nid in enumerate(graph.inputs):
            name = graph.input_name(nid)
            packed[name] = _variable_pattern(i, n, words)
        result = graph.evaluate(packed)[output]
        return cls(n, _unpack_bits(result, rows))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return 1 << self.num_vars

    def value(self, minterm: int) -> int:
        return int(self.on_bits[minterm])

    def is_care(self, minterm: int) -> bool:
        return bool(self.care_bits[minterm])

    def minterms(self) -> List[int]:
        """Care minterms where the function is 1."""
        return [int(i) for i in np.nonzero(self.on_bits & self.care_bits)[0]]

    def off_minterms(self) -> List[int]:
        """Care minterms where the function is 0."""
        return [int(i) for i in np.nonzero(~self.on_bits & self.care_bits)[0]]

    def dc_minterms(self) -> List[int]:
        return [int(i) for i in np.nonzero(~self.care_bits)[0]]

    def cube_intersects_off(self, cube: Cube) -> bool:
        """True if ``cube`` covers any care OFF-set minterm (i.e. the cube is
        not a legal implicant of ON ∪ DC)."""
        idx = np.arange(self.size, dtype=np.int64)
        inside = (idx & cube.mask) == cube.value
        off = ~self.on_bits & self.care_bits
        return bool(np.any(inside & off))

    def cover_is_complete(self, cubes: Sequence[Cube]) -> bool:
        """True if every care ON-set minterm is covered by some cube."""
        covered = np.zeros(self.size, dtype=bool)
        idx = np.arange(self.size, dtype=np.int64)
        for cube in cubes:
            covered |= (idx & cube.mask) == cube.value
        need = self.on_bits & self.care_bits
        return bool(np.all(covered[need]))

    def equivalent_under_care(self, other: "TruthTable") -> bool:
        """Equality on the intersection of the two care sets."""
        if self.num_vars != other.num_vars:
            return False
        both = self.care_bits & other.care_bits
        return bool(np.all(self.on_bits[both] == other.on_bits[both]))

    def complement(self) -> "TruthTable":
        return TruthTable(self.num_vars, ~self.on_bits, self.care_bits.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return (
            self.num_vars == other.num_vars
            and bool(np.all(self.on_bits == other.on_bits))
            and bool(np.all(self.care_bits == other.care_bits))
        )

    def __repr__(self) -> str:
        ones = int(np.count_nonzero(self.on_bits))
        dcs = int(np.count_nonzero(~self.care_bits))
        return f"TruthTable(vars={self.num_vars}, on={ones}, dc={dcs})"


def _variable_pattern(var: int, num_vars: int, words: int) -> np.ndarray:
    """Packed uint64 words where bit (w*64 + b) equals bit ``var`` of the
    minterm index (w*64 + b)."""
    rows = 1 << num_vars
    idx = np.arange(rows, dtype=np.uint64)
    bits = (idx >> np.uint64(var)) & np.uint64(1)
    return _pack_bits(bits, words)


def _pack_bits(bits: np.ndarray, words: int) -> np.ndarray:
    """Pack a 0/1 vector into uint64 words, bit b of word w = row w*64+b."""
    padded = np.zeros(words * 64, dtype=np.uint64)
    padded[: bits.shape[0]] = bits.astype(np.uint64)
    lanes = padded.reshape(words, 64) << np.arange(64, dtype=np.uint64)
    return np.bitwise_or.reduce(lanes, axis=1)


def _unpack_bits(words: np.ndarray, rows: int) -> np.ndarray:
    """Inverse of :func:`_pack_bits`, truncated to ``rows`` entries."""
    lanes = (
        words[:, None] >> np.arange(64, dtype=np.uint64)
    ) & np.uint64(1)
    return lanes.reshape(-1)[:rows].astype(bool)


def sop_to_graph(
    cubes: Sequence[Cube],
    num_vars: int,
    input_names: Optional[Sequence[str]] = None,
    name: str = "sop",
    output_name: str = "y",
) -> LogicGraph:
    """Build a two-input-gate logic graph computing the SOP ``cubes``.

    Each cube becomes a balanced AND tree over its literals (NOT gates for
    complemented variables, shared across cubes); the cubes are combined
    with a balanced OR tree.  An empty cube list yields constant 0; a cube
    with no literals yields constant 1.
    """
    if input_names is None:
        input_names = [f"x{i}" for i in range(num_vars)]
    if len(input_names) != num_vars:
        raise ValueError("need one name per variable")
    graph = LogicGraph(name)
    var_ids = [graph.add_input(n) for n in input_names]
    inv_ids: dict = {}

    def literal_node(var: int, pol: int) -> int:
        if pol:
            return var_ids[var]
        if var not in inv_ids:
            inv_ids[var] = graph.add_gate(cells.NOT, var_ids[var])
        return inv_ids[var]

    def tree(op: str, operands: List[int]) -> int:
        layer = list(operands)
        while len(layer) > 1:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(graph.add_gate(op, layer[i], layer[i + 1]))
            if len(layer) % 2 == 1:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    product_ids: List[int] = []
    has_const1 = False
    for cube in cubes:
        lits = cube.literals()
        if not lits:
            has_const1 = True
            continue
        nodes = [literal_node(v, p) for v, p in lits]
        product_ids.append(tree(cells.AND, nodes) if len(nodes) > 1 else nodes[0])

    if has_const1:
        out = graph.add_const(1)
    elif not product_ids:
        out = graph.add_const(0)
    elif len(product_ids) == 1:
        out = product_ids[0]
    else:
        out = tree(cells.OR, product_ids)
    graph.set_output(output_name, out)
    return graph


def graph_from_truth_table(
    table: TruthTable,
    input_names: Optional[Sequence[str]] = None,
    name: str = "tt",
    output_name: str = "y",
) -> LogicGraph:
    """Direct (unminimized) SOP construction from a table's ON-set."""
    full_mask = (1 << table.num_vars) - 1
    cubes = [Cube(full_mask, m) for m in table.minterms()]
    return sop_to_graph(cubes, table.num_vars, input_names, name, output_name)
