"""Tree height reduction (the classic `balance` pass).

Algebraic factoring emits left-deep AND/OR chains; depth drives both the
number of LPV macro-cycles and — after full path balancing — the number of
inserted buffers, so chains are poison for the LPU.  This pass rewrites
every maximal single-op chain of an associative operator (AND, OR, XOR)
into a balanced binary tree, halving-to-quartering typical factored-netlist
depth while preserving function and gate count.

Only chain-internal nodes with a single fanout are collapsed: a shared
intermediate result keeps its own gate so logic is never duplicated.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from ..netlist import cells
from ..netlist.graph import LogicGraph

#: Ops that are associative and commutative as two-input reductions.
_ASSOCIATIVE = (cells.AND, cells.OR, cells.XOR)


def balance_trees(graph: LogicGraph) -> LogicGraph:
    """Return a depth-reduced, function-equivalent copy of ``graph``."""
    fanouts = graph.fanouts()
    po_nodes = set(graph.output_ids)
    out = LogicGraph(graph.name)
    remap: Dict[int, int] = {}
    # Depth of every node in the new graph, for depth-aware tree building.
    depth_of: Dict[int, int] = {}

    def new_gate(op: str, *fanins: int, name=None) -> int:
        nid = out.add_gate(op, *fanins, name=name)
        depth_of[nid] = 1 + max(depth_of[f] for f in fanins)
        return nid

    def chain_leaves(nid: int, op: str, leaves: List[int]) -> None:
        """Collect the leaves of the maximal ``op`` chain rooted at nid."""
        for fid in graph.fanins_of(nid):
            if (
                graph.op_of(fid) == op
                and len(fanouts[fid]) == 1
                and fid not in po_nodes
            ):
                chain_leaves(fid, op, leaves)
            else:
                leaves.append(fid)

    def build_tree(op: str, leaf_ids: List[int]) -> int:
        """Huffman-style reduction: always combine the two shallowest
        operands, minimizing the tree's final depth for unequal leaves."""
        heap = [
            (depth_of[remap[l]], i, remap[l])
            for i, l in enumerate(leaf_ids)
        ]
        heapq.heapify(heap)
        counter = len(heap)
        while len(heap) > 1:
            da, _, a = heapq.heappop(heap)
            db, _, b = heapq.heappop(heap)
            nid = new_gate(op, a, b)
            counter += 1
            heapq.heappush(heap, (depth_of[nid], counter, nid))
        return heap[0][2]

    for nid in graph.topological_order():
        node = graph.nodes[nid]
        if node.op == cells.INPUT:
            assert node.name is not None
            new_id = out.add_input(node.name)
            depth_of[new_id] = 0
            remap[nid] = new_id
        elif node.op in (cells.CONST0, cells.CONST1):
            new_id = out.add_const(1 if node.op == cells.CONST1 else 0)
            depth_of[new_id] = 0
            remap[nid] = new_id
        elif node.op in _ASSOCIATIVE:
            leaves: List[int] = []
            chain_leaves(nid, node.op, leaves)
            remap[nid] = build_tree(node.op, leaves)
        else:
            remap[nid] = new_gate(
                node.op, *(remap[f] for f in node.fanins), name=node.name
            )

    for name, nid in graph.outputs:
        out.set_output(name, remap[nid])
    return out.extract()
