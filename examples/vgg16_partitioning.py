"""Anatomy of the compiler on a VGG16 conv layer: partition, merge,
schedule, and the time-space diagram (the paper's Figs. 4-6, live).

Run:  python examples/vgg16_partitioning.py
"""

from repro.analysis import render_gantt, utilization
from repro.core import LPUConfig, build_schedule, merge_partition, partition
from repro.models import layer_block, vgg16_paper_layers, vgg16_workload
from repro.synth import preprocess


def main() -> None:
    vgg = vgg16_workload()
    layer = vgg16_paper_layers(vgg)[0]  # conv2
    block, sampled = layer_block(layer, sample_neurons=6, seed=0)
    print(f"layer {layer.name}: sampled {sampled}/{layer.num_neurons} "
          f"filters -> FFCL block {block}")

    pre = preprocess(block)
    print(f"pre-processed: {pre.report}")

    config = LPUConfig()  # the paper's 16 x 32 LPU
    part = partition(pre.graph, config.m)
    print(f"\nAlgorithm 1/2: {part.num_mfgs} MFGs "
          f"(sum of spans = {part.total_macro_cycles_sequential()})")

    merged = merge_partition(part)
    print(f"Algorithm 3:   {merged.num_mfgs} MFGs after merging "
          f"({part.num_mfgs / merged.num_mfgs:.2f}x reduction)")

    schedule = build_schedule(merged, config)
    schedule.check_invariants()
    print(
        f"Algorithm 4:   makespan {schedule.makespan} macro-cycles "
        f"({schedule.total_clock_cycles} clocks), "
        f"queue depth {schedule.queue_depth}, "
        f"{schedule.circulations} circulation(s)"
    )

    print("\ntime-space diagram (letters = MFGs, '.' = idle):")
    print(render_gantt(schedule, max_cycles=40, max_lpvs=16))
    print(f"pipeline utilization: {utilization(schedule):.1%}")

    seq = build_schedule(merge_partition(partition(pre.graph, config.m)),
                         config, policy="sequential")
    print(
        f"\npipelined vs sequential makespan: {schedule.makespan} vs "
        f"{seq.makespan} macro-cycles "
        f"({seq.makespan / schedule.makespan:.2f}x from MFG overlap)"
    )


if __name__ == "__main__":
    main()
