"""Jet substructure classification (JSC) on the LPU vs LogicNets.

Reproduces the Table III story on the physics workload: the programmable
LPU sustains megasamples/s on the JSC-M topology, while a hardened
LogicNets pipeline is faster but frozen — one bitstream per model.

Run:  python examples/jet_substructure.py
"""

from repro.analysis import render_table
from repro.baselines import LogicNetsModel, PAPER_REPORTED_FPS
from repro.core import PAPER_CONFIG
from repro.models import evaluate_model, jsc_l_workload, jsc_m_workload
from repro.nullanet import (
    LayerSpec,
    TrainConfig,
    run_nullanet_flow,
    synthetic_jsc,
)


def main() -> None:
    # 1) A real trained-and-extracted JSC classifier (synthetic data).
    dataset = synthetic_jsc(num_train=1500, num_test=400)
    flow = run_nullanet_flow(
        dataset,
        hidden=[LayerSpec(32, 6), LayerSpec(16, 6)],
        train_config=TrainConfig(epochs=20, seed=5),
        bits_per_class=2,
        seed=5,
    )
    print(
        f"trained JSC classifier: binary acc {flow.binary_test_accuracy:.3f}, "
        f"logic acc {flow.logic_test_accuracy:.3f}, "
        f"FFCL {flow.network_graph}"
    )

    # 2) Throughput of the LogicNets-shaped workloads on the paper's LPU.
    ln = LogicNetsModel()
    rows = []
    for model in (jsc_m_workload(), jsc_l_workload()):
        lpu = evaluate_model(model, PAPER_CONFIG, sample_neurons=8)
        reported = PAPER_REPORTED_FPS[model.name]
        rows.append(
            [
                model.name,
                lpu.fps,
                reported.get("LPU (paper)"),
                reported.get("LogicNets"),
                f"x{ln.parallel_instances(model)}",
                "reprogrammable" if True else "",
            ]
        )
    print()
    print(
        render_table(
            "JSC throughput: programmable LPU vs hardened LogicNets",
            ["model", "LPU ours (FPS)", "LPU paper", "LogicNets reported",
             "LN copies", "LPU advantage"],
            rows,
        )
    )
    print(
        "\nLogicNets wins raw FPS by hardening the network into one-purpose "
        "logic;\nthe LPU runs *all* of these models (and the Table II ones) "
        "on the same fabric."
    )


if __name__ == "__main__":
    main()
