"""End-to-end NullaNet flow on a synthetic MNIST-like task.

The paper's complete system: train a sparsely-connected binarized MLP,
extract each neuron as minimized fixed-function combinational logic
(don't-cares mined from the training data — NullaNet's core optimization),
stitch the layers into one FFCL network, compile it for the LPU, and
classify a batch of test digits on the cycle-accurate simulator.

Run:  python examples/mnist_nullanet.py
"""

import numpy as np

from repro.core import LPUConfig, compile_ffcl
from repro.lpu import LPUSimulator
from repro.nullanet import (
    LayerSpec,
    TrainConfig,
    run_nullanet_flow,
    synthetic_mnist,
)


def pack_batch(x_bits: np.ndarray, num_inputs: int) -> dict:
    """Pack up to 64 samples into one uint64 word per input (bit lanes)."""
    count = min(64, x_bits.shape[0])
    stim = {}
    for i in range(num_inputs):
        word = np.uint64(0)
        for row in range(count):
            if x_bits[row, i]:
                word |= np.uint64(1) << np.uint64(row)
        stim[f"x{i}"] = np.array([word], dtype=np.uint64)
    return stim


def unpack_outputs(outputs: dict, num_classes: int, bits_per_class: int, count: int):
    """Popcount readout over the packed output words."""
    scores = np.zeros((count, num_classes), dtype=int)
    for c in range(num_classes):
        for b in range(bits_per_class):
            word = outputs[f"out{c * bits_per_class + b}"][0]
            for row in range(count):
                scores[row, c] += int((word >> np.uint64(row)) & np.uint64(1))
    return np.argmax(scores, axis=1)


def main() -> None:
    dataset = synthetic_mnist(num_train=1500, num_test=400)
    print(f"dataset: {dataset.name}, {dataset.num_features} binary features, "
          f"{dataset.num_classes} classes")

    flow = run_nullanet_flow(
        dataset,
        hidden=[LayerSpec(width=64, fan_in=8)],
        train_config=TrainConfig(epochs=30, seed=3),
        output_fan_in=10,
        bits_per_class=2,
        seed=3,
    )
    print(f"BNN accuracy (float head):        {flow.test_accuracy:.3f}")
    print(f"BNN accuracy (binary readout):    {flow.binary_test_accuracy:.3f}")
    print(f"extracted-logic accuracy:         {flow.logic_test_accuracy:.3f}")
    print(f"FFCL network: {flow.network_graph}")

    config = LPUConfig(num_lpvs=8, lpes_per_lpv=16)
    result = compile_ffcl(flow.network_graph, config)
    print(f"compiled: {result.metrics}")

    # Classify 64 test digits in ONE pass of the LPU (bit-lane batch).
    sim = LPUSimulator(result.program)
    batch = dataset.x_test[:64]
    stim = pack_batch(batch, dataset.num_features)
    run = sim.run(stim)
    preds = unpack_outputs(
        run.outputs, dataset.num_classes, flow.bits_per_class, 64
    )
    accuracy = float(np.mean(preds == dataset.y_test[:64]))
    print(
        f"LPU batch inference: 64 digits in {run.macro_cycles} macro-cycles "
        f"({run.clock_cycles} clocks) -> accuracy {accuracy:.3f}"
    )
    fps = config.fps(run.macro_cycles)
    print(f"throughput at {config.frequency_hz/1e6:.0f} MHz: {fps:,.0f} FPS")


if __name__ == "__main__":
    main()
