"""Network intrusion detection (UNSW-NB15-style) on the LPU.

The paper's cybersecurity workload: 593 binary features, 2 classes
(Murovic & Trost preprocessing).  Trains a NullaNet classifier on a
synthetic stand-in, extracts the FFCL, compiles for the LPU, verifies
batch inference on the simulator, and reports throughput next to the
Table III numbers.

Run:  python examples/network_intrusion.py
"""

import numpy as np

from repro.baselines import PAPER_REPORTED_FPS
from repro.core import LPUConfig, PAPER_CONFIG, compile_ffcl
from repro.lpu import LPUSimulator
from repro.models import evaluate_model, nid_workload
from repro.nullanet import (
    LayerSpec,
    TrainConfig,
    run_nullanet_flow,
    synthetic_nid,
)


def main() -> None:
    # 1) Real trained pipeline on a small synthetic NID task.
    dataset = synthetic_nid(num_train=1200, num_test=400, num_features=128)
    flow = run_nullanet_flow(
        dataset,
        hidden=[LayerSpec(24, 6)],
        train_config=TrainConfig(epochs=15, seed=7),
        bits_per_class=2,
        seed=7,
    )
    print(
        f"NID classifier: binary acc {flow.binary_test_accuracy:.3f}, "
        f"logic acc {flow.logic_test_accuracy:.3f}"
    )

    result = compile_ffcl(
        flow.network_graph, LPUConfig(num_lpvs=8, lpes_per_lpv=16)
    )
    sim = LPUSimulator(result.program)
    x = dataset.x_test[:64]
    stim = {}
    for i in range(dataset.num_features):
        word = np.uint64(0)
        for row in range(64):
            if x[row, i]:
                word |= np.uint64(1) << np.uint64(row)
        stim[f"x{i}"] = np.array([word], dtype=np.uint64)
    run = sim.run(stim)
    ref = flow.network_graph.evaluate(stim)
    exact = all(np.array_equal(run.outputs[k], ref[k]) for k in ref)
    print(
        f"LPU batch of 64 flows in {run.macro_cycles} macro-cycles; "
        f"simulator == functional evaluation: {exact}"
    )

    # 2) The full-size NID workload on the paper's LPU configuration.
    model = nid_workload()
    lpu = evaluate_model(model, PAPER_CONFIG, sample_neurons=8)
    reported = PAPER_REPORTED_FPS["NID"]
    print(f"\nfull NID workload ({model.total_neurons} neurons):")
    print(f"  LPU (ours, measured):  {lpu.fps / 1e6:8.2f} MFPS")
    print(f"  LPU (paper):           {reported['LPU (paper)'] / 1e6:8.2f} MFPS")
    print(f"  LogicNets (reported):  {reported['LogicNets'] / 1e6:8.2f} MFPS")
    print(f"  FINN-MVU (reported):   {reported['FINN-MVU'] / 1e6:8.2f} MFPS")
    print(
        "\nthe hardened pipelines win raw throughput; the LPU keeps the "
        "model field-updatable on unchanged hardware (the paper's trade-off)."
    )


if __name__ == "__main__":
    main()
