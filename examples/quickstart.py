"""Quickstart: compile a Verilog FFCL block and run it on the simulated LPU.

The paper's flow (Fig. 1) in ~40 lines: a gate-level Verilog netlist goes
through pre-processing (optimize / levelize / path-balance), MFG
partitioning + merging, scheduling, and code generation; the resulting
program executes on the macro-cycle-accurate LPU model and is checked
against direct functional evaluation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import LPUConfig, compile_ffcl
from repro.engine import Session
from repro.lpu import cross_check, simulate, random_stimulus
from repro.netlist import parse_verilog

VERILOG = """
// 4-bit odd-parity with a masked alarm output
module demo (d0, d1, d2, d3, mask, parity, alarm);
  input d0, d1, d2, d3, mask;
  output parity, alarm;
  wire t0, t1;
  xor g0 (t0, d0, d1);
  xor g1 (t1, d2, d3);
  xor g2 (parity, t0, t1);
  and g3 (alarm, parity, mask);
endmodule
"""


def main() -> None:
    graph = parse_verilog(VERILOG)
    print(f"parsed: {graph}")

    # A small LPU: 4 LPVs of 4 LPEs (the paper's default is 16 x 32).
    config = LPUConfig(num_lpvs=4, lpes_per_lpv=4)
    result = compile_ffcl(graph, config)

    m = result.metrics
    print(f"compiled: {m}")
    print(
        f"  schedule: {m.makespan_macro_cycles} macro-cycles "
        f"({m.total_clock_cycles} clocks @ {config.frequency_hz/1e6:.0f} MHz), "
        f"queue depth {m.queue_depth}"
    )
    print(
        f"  MFGs: {m.mfgs_before_merge} -> {m.mfgs_after_merge} "
        f"after merging ({m.mfg_reduction:.2f}x)"
    )

    # Execute on the LPU model: one run evaluates 64 packed samples.
    stimulus = random_stimulus(graph, seed=1)
    sim = simulate(result.program, stimulus)
    print(
        f"simulated: {sim.macro_cycles} macro-cycles, "
        f"{sim.compute_instructions_executed} LPE ops, "
        f"{sim.switch_routes} switch routes"
    )

    ok, lpu_out, ref = cross_check(result.program, stimulus)
    print(f"LPU output equals functional evaluation: {ok}")
    assert ok
    for name, word in sorted(lpu_out.items()):
        print(f"  {name}: {int(word[0]):#018x}")

    # Fast serving path: a Session lowers the program once to flat numpy
    # tables (the trace engine) and amortizes that across repeated batched
    # runs — bit-identical to the cycle-accurate model, much faster.
    session = Session(result.program, engine="trace")
    for batch in range(4):
        stim = random_stimulus(graph, array_size=256, seed=batch)
        out = session.run(stim)  # 256 words x 64 lanes = 16384 samples
        assert all(
            np.array_equal(out.outputs[n], w)
            for n, w in graph.evaluate(stim).items()
        )
    print(
        f"trace engine: {session.runs_completed} batches x "
        f"{session.samples_per_run(256)} samples, all verified"
    )


if __name__ == "__main__":
    main()
