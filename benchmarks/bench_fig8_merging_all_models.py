"""Fig. 8: effect of MFG merging across all benchmark models.

(a) throughput with/without merging, (b) MFG count with/without merging.

Paper finding: "the throughput is improved by 5.2x on average while the MFG
count can be reduced up to 9.4x".  We report both aggregate statistics from
measured compiles of all seven models.
"""

from conftest import publish

from repro.analysis import geometric_mean, render_table
from repro.core import PAPER_CONFIG
from repro.models import (
    all_models,
    evaluate_model,
    vgg16_paper_layers,
)

SAMPLE_NEURONS = 6
_CACHE = {}


def _evaluations():
    if "data" in _CACHE:
        return _CACHE["data"]
    data = []
    for model in all_models():
        layers = (
            vgg16_paper_layers(model) if model.name.startswith("VGG16") else None
        )
        merged = evaluate_model(
            model, PAPER_CONFIG, merge=True,
            sample_neurons=SAMPLE_NEURONS, layers=layers,
        )
        unmerged = evaluate_model(
            model, PAPER_CONFIG, merge=False,
            sample_neurons=SAMPLE_NEURONS, layers=layers,
        )
        data.append((model, merged, unmerged))
    _CACHE["data"] = data
    return data


def test_fig8_merging_across_models(benchmark):
    data = _evaluations()
    model0 = data[0][0]
    benchmark(
        evaluate_model,
        model0,
        PAPER_CONFIG,
        merge=True,
        sample_neurons=SAMPLE_NEURONS,
        layers=vgg16_paper_layers(model0),
    )

    rows = []
    speedups = []
    reductions = []
    for model, merged, unmerged in data:
        speedup = merged.fps / unmerged.fps
        reduction = (
            unmerged.total_mfgs / merged.total_mfgs
            if merged.total_mfgs
            else 1.0
        )
        speedups.append(speedup)
        reductions.append(reduction)
        rows.append(
            [
                model.name,
                unmerged.fps,
                merged.fps,
                f"{speedup:.2f}x",
                unmerged.total_mfgs,
                merged.total_mfgs,
                f"{reduction:.2f}x",
            ]
        )
    avg_speedup = geometric_mean(speedups)
    max_reduction = max(reductions)
    table = render_table(
        "Fig. 8 — merging across all models (LPV count 16)",
        ["model", "FPS unmerged", "FPS merged", "speedup",
         "MFGs unmerged", "MFGs merged", "MFG reduction"],
        rows,
    )
    summary = (
        f"avg (geomean) throughput speedup: {avg_speedup:.2f}x "
        f"(paper: 5.2x avg)\n"
        f"max MFG-count reduction: {max_reduction:.2f}x (paper: up to 9.4x)"
    )
    publish("fig8_merging_all_models", table + "\n\n" + summary)

    # Shape: merging always helps, multi-x on the large models, and the
    # aggregate statistics land in the paper's regime.
    for _model, merged, unmerged in data:
        assert merged.fps >= unmerged.fps
    assert avg_speedup > 2.0
    assert max_reduction > 4.0
