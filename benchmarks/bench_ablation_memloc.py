"""Ablation A2: instruction-queue compression from memLoc sharing.

Algorithm 4 lets an MFG share a queue address with its most recent child
because they occupy disjoint LPVs ("the required size of the instruction
queues is reduced").  This bench measures the achieved queue depth against
the naive assignment of one unique address per MFG, across graph scales.
"""

from conftest import publish

from repro.analysis import render_table
from repro.core import LPUConfig, build_schedule, merge_partition, partition
from repro.netlist import random_dag
from repro.synth import preprocess

CFG = LPUConfig(num_lpvs=8, lpes_per_lpv=4)
_CACHE = {}


def _schedules():
    if "rows" not in _CACHE:
        rows = []
        for gates in (40, 120, 300, 600):
            g = preprocess(random_dag(8, gates, 4, seed=gates)).graph
            part = merge_partition(partition(g, CFG.m))
            sched = build_schedule(part, CFG)
            naive_depth = len(sched.items)  # one address per MFG
            rows.append(
                [
                    f"{gates} gates",
                    len(sched.items),
                    naive_depth,
                    sched.queue_depth,
                    f"{naive_depth / sched.queue_depth:.2f}x",
                ]
            )
        _CACHE["rows"] = rows
    return _CACHE["rows"]


def test_ablation_memloc_sharing(benchmark):
    rows = _schedules()

    def kernel():
        g = preprocess(random_dag(8, 120, 4, seed=120)).graph
        part = merge_partition(partition(g, CFG.m))
        return build_schedule(part, CFG).queue_depth

    benchmark(kernel)
    table = render_table(
        "Ablation — instruction queue depth: memLoc sharing vs naive",
        ["workload", "MFGs", "naive depth (1 addr/MFG)",
         "achieved depth", "compression"],
        rows,
    )
    publish("ablation_memloc", table)

    for row in rows:
        assert row[3] <= row[2], "sharing must never exceed naive depth"
    # At least one workload must show real compression.
    assert any(float(str(r[4]).rstrip("x")) > 1.2 for r in rows)
