"""Fig. 7: per-layer effect of MFG merging on VGG16 layers 2-13.

(a) clock-cycle count per layer with and without the merging procedure,
(b) MFG count per layer with and without merging.

Paper finding: merging reduces both, and computation time correlates
strongly with MFG count.  We verify the same on our measured compiles and
report the correlation coefficient.
"""

import numpy as np
from conftest import publish

from repro.analysis import render_series, render_table
from repro.core import PAPER_CONFIG
from repro.models import evaluate_layer, vgg16_paper_layers, vgg16_workload

SAMPLE_NEURONS = 6
_CACHE = {}


def _per_layer():
    if "data" in _CACHE:
        return _CACHE["data"]
    vgg = vgg16_workload()
    layers = vgg16_paper_layers(vgg)
    merged = [
        evaluate_layer(l, PAPER_CONFIG, merge=True, sample_neurons=SAMPLE_NEURONS)
        for l in layers
    ]
    unmerged = [
        evaluate_layer(l, PAPER_CONFIG, merge=False, sample_neurons=SAMPLE_NEURONS)
        for l in layers
    ]
    _CACHE["data"] = (layers, merged, unmerged)
    return _CACHE["data"]


def test_fig7_cycles_and_mfg_count(benchmark):
    layers, merged, unmerged = _per_layer()
    benchmark(
        evaluate_layer,
        layers[0],
        PAPER_CONFIG,
        merge=True,
        sample_neurons=SAMPLE_NEURONS,
    )

    names = [l.name for l in layers]
    # Fig. 7a plots the clock cycles of computing each layer's FFCL once
    # (one pass over the packed operands), which is what tracks MFG count;
    # per-image cost additionally multiplies by the layer's pass count.
    cycles_merged = [e.makespan_full * PAPER_CONFIG.t_c for e in merged]
    cycles_unmerged = [e.makespan_full * PAPER_CONFIG.t_c for e in unmerged]
    mfgs_merged = [e.mfgs_full for e in merged]
    mfgs_unmerged = [e.mfgs_full for e in unmerged]

    fig_a = render_series(
        "Fig. 7a — VGG16 clock cycles per layer (with/without merging)",
        "layer",
        names,
        {"merged": cycles_merged, "unmerged": cycles_unmerged},
    )
    fig_b = render_series(
        "Fig. 7b — VGG16 MFG count per layer (with/without merging)",
        "layer",
        names,
        {"merged": mfgs_merged, "unmerged": mfgs_unmerged},
    )
    rows = [
        [
            names[i],
            cycles_unmerged[i],
            cycles_merged[i],
            cycles_unmerged[i] / cycles_merged[i],
            mfgs_unmerged[i],
            mfgs_merged[i],
            mfgs_unmerged[i] / mfgs_merged[i],
        ]
        for i in range(len(names))
    ]
    table = render_table(
        "Fig. 7 data — per-layer cycles and MFGs",
        ["layer", "cyc unmerged", "cyc merged", "cyc gain",
         "MFG unmerged", "MFG merged", "MFG gain"],
        rows,
    )

    # The paper's observation: computation time tracks MFG count.
    all_cycles = np.array(cycles_merged + cycles_unmerged, dtype=float)
    all_mfgs = np.array(mfgs_merged + mfgs_unmerged, dtype=float)
    corr = float(np.corrcoef(all_cycles, all_mfgs)[0, 1])
    summary = f"correlation(cycles, MFG count) = {corr:.3f}"
    publish("fig7_vgg16_merging", "\n\n".join([fig_a, fig_b, table, summary]))

    for i in range(len(names)):
        assert cycles_merged[i] <= cycles_unmerged[i]
        assert mfgs_merged[i] <= mfgs_unmerged[i]
    assert corr > 0.8, "cycle count should correlate with MFG count"
