"""Ablation A3 (paper future work, Section VII): heterogeneous LPVs and
multi-LPU assemblies.

"We plan to explore the heterogeneous architecture where the number of
LPEs per LPVs ... will not be the same for all LPVs.  Also, it is worth
trying multiple LPUs that can be assembled in parallel or series."

(a) Tapered LPV width profiles: FFCL cones converge toward their outputs,
so late LPVs can be narrower.  We measure throughput-per-LPE (area
efficiency) across taper factors on a VGG16 layer block.

(b) Multi-LPU: parallel and series assemblies of the paper's 16x32 LPU on
the VGG16 layer costs.
"""

from conftest import publish

from repro.analysis import render_table
from repro.core import PAPER_CONFIG
from repro.core.hetero import MultiLPU, evaluate_heterogeneous, tapered_profile
from repro.models import evaluate_model, layer_block, vgg16_paper_layers, vgg16_workload
from repro.synth import preprocess

_CACHE = {}


def _hetero_rows():
    if "hetero" not in _CACHE:
        vgg = vgg16_workload()
        layer = vgg16_paper_layers(vgg)[0]
        block, _ = layer_block(layer, sample_neurons=6, seed=0)
        g = preprocess(block).graph
        rows = []
        for taper in (1.0, 0.75, 0.5, 0.25):
            lpu = tapered_profile(16, 32, taper)
            ev = evaluate_heterogeneous(g, lpu)
            rows.append(
                [
                    f"taper {taper:.2f}",
                    ev.total_lpes,
                    ev.num_mfgs,
                    ev.makespan,
                    ev.fps,
                    ev.fps_per_lpe,
                ]
            )
        _CACHE["hetero"] = (g, rows)
    return _CACHE["hetero"]


def test_hetero_taper_profiles(benchmark):
    g, rows = _hetero_rows()
    benchmark(evaluate_heterogeneous, g, tapered_profile(16, 32, 0.5))
    publish(
        "ablation_hetero",
        render_table(
            "Future work — tapered LPV width profiles (VGG16 conv2 block)",
            ["profile", "LPEs", "MFGs", "makespan", "FPS", "FPS/LPE"],
            rows,
        ),
    )
    flat_eff = rows[0][5]
    best_eff = max(r[5] for r in rows)
    # Tapering must improve area efficiency for converging FFCL graphs.
    assert best_eff >= flat_eff


def test_multi_lpu_assemblies(benchmark):
    vgg = vgg16_workload()
    ev = evaluate_model(
        vgg, PAPER_CONFIG, sample_neurons=6, layers=vgg16_paper_layers(vgg)
    )
    costs = [int(l.cycles_per_image) for l in ev.layers]
    benchmark(MultiLPU(PAPER_CONFIG, 4, "series").throughput_fps, costs)

    rows = []
    for count in (1, 2, 4):
        for topology in ("parallel", "series"):
            multi = MultiLPU(PAPER_CONFIG, count, topology)
            rows.append(
                [
                    f"{count}x {topology}",
                    multi.total_lpes(),
                    multi.throughput_fps(costs),
                ]
            )
    publish(
        "ablation_multi_lpu",
        render_table(
            "Future work — multi-LPU assemblies on VGG16 (per-image costs)",
            ["assembly", "LPEs", "FPS"],
            rows,
        ),
    )
    one = MultiLPU(PAPER_CONFIG, 1, "parallel").throughput_fps(costs)
    four = MultiLPU(PAPER_CONFIG, 4, "parallel").throughput_fps(costs)
    assert four > 3.0 * one  # near-linear parallel scaling
