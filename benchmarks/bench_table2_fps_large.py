"""Table II: FPS on the high-accuracy models (VGG16, LeNet-5, MLPMixer).

Method (the paper's own, Section VI-B): the baseline columns are the
published numbers the paper carries ("we use the best results of each
implementation reported in [12]"); the LPU column is measured — here, from
actually compiling and scheduling each model's FFCL workload on the default
16-LPV LPU.  Our analytical roofline estimates of the baselines are shown
as a supplementary block (they are more optimistic than the measured,
heavily folded implementations the paper compared against — see
EXPERIMENTS.md for the discussion).

Expected shape: the LPU column dominates every reported baseline on every
large model, as in the paper.
"""

import numpy as np
from conftest import publish

from repro.analysis import render_table
from repro.baselines import (
    MACArrayModel,
    NullaDSPModel,
    PAPER_TABLE2_FPS,
    XNORModel,
)
from repro.core import PAPER_CONFIG, compile_ffcl
from repro.engine import Session
from repro.lpu import evaluate_graph, random_stimulus
from repro.models import (
    evaluate_model,
    layer_block,
    lenet5_workload,
    mlpmixer_b4_workload,
    mlpmixer_s4_workload,
    vgg16_paper_layers,
    vgg16_workload,
)

SAMPLE_NEURONS = 6
_CACHE = {}


def _evaluations():
    if "rows" in _CACHE:
        return _CACHE["rows"]
    models = []
    vgg = vgg16_workload()
    models.append((vgg, vgg16_paper_layers(vgg)))
    for factory in (lenet5_workload, mlpmixer_s4_workload, mlpmixer_b4_workload):
        m = factory()
        models.append((m, None))
    evals = {
        m.name: evaluate_model(
            m, PAPER_CONFIG, sample_neurons=SAMPLE_NEURONS, layers=layers
        )
        for m, layers in models
    }
    _CACHE["rows"] = (models, evals)
    return _CACHE["rows"]


def test_table2_fps_comparison(benchmark):
    models, evals = _evaluations()
    vgg, vgg_layers = models[0]
    # Benchmark the measured kernel: compiling+scheduling one model.
    benchmark(
        evaluate_model,
        vgg,
        PAPER_CONFIG,
        sample_neurons=SAMPLE_NEURONS,
        layers=vgg_layers,
    )

    rows = []
    for m, _layers in models:
        reported = PAPER_TABLE2_FPS.get(m.name, {})
        ours = evals[m.name].fps
        rows.append(
            [
                m.name,
                reported.get("MAC"),
                reported.get("NullaDSP"),
                reported.get("XNOR"),
                ours,
                reported.get("LPU (paper)"),
            ]
        )
    table = render_table(
        "Table II — FPS, high-accuracy models (LPV count 16)",
        ["model", "MAC [12]", "NullaDSP [12]", "XNOR [12]",
         "LPU (ours, measured)", "LPU (paper)"],
        rows,
    )

    # Supplementary: our analytical rooflines on the same workloads.
    mac, xnor, ndsp = MACArrayModel(), XNORModel(), NullaDSPModel()
    roof_rows = [
        [m.name, mac.fps(m), ndsp.fps(m), xnor.fps(m), evals[m.name].fps]
        for m, _ in models
    ]
    roofs = render_table(
        "Supplementary — our analytical baseline rooflines (same workloads)",
        ["model", "MAC roofline", "NullaDSP roofline", "XNOR roofline",
         "LPU (ours)"],
        roof_rows,
    )
    publish("table2_fps_large", table + "\n\n" + roofs)

    # Shape assertions.  On VGG16 and LeNet-5 the measured LPU beats
    # every reported baseline, as in the paper.  On the MLPMixers our
    # measured LPU beats the reported MAC baseline but not the reported
    # XNOR figure — a documented divergence (EXPERIMENTS.md): the mixers'
    # per-channel/per-patch dense blocks repeat 32-50 times per image,
    # which our per-position cost model charges in full.
    for name in ("VGG16", "LENET5"):
        ours = evals[name].fps
        for column, value in PAPER_TABLE2_FPS[name].items():
            if column != "LPU (paper)" and value is not None:
                assert ours > value, (name, column)
    for name in ("MLPMixer-S/4", "MLPMixer-B/4"):
        assert evals[name].fps > PAPER_TABLE2_FPS[name]["MAC"], name


def test_table2_measured_execution(benchmark):
    """The Table II FPS numbers are schedule-length projections; here one
    VGG16 sampled block actually *executes* through the engine layer: the
    trace engine's outputs must match the cycle-accurate model and the
    functional reference bit-for-bit, batch after batch."""
    model = vgg16_workload()
    layer = max(vgg16_paper_layers(model), key=lambda l: l.num_neurons)
    block, _ = layer_block(layer, sample_neurons=SAMPLE_NEURONS, seed=0)
    result = compile_ffcl(block, PAPER_CONFIG)
    trace = Session(result.program, engine="trace")
    cycle = Session(result.program, engine="cycle")
    for batch in range(3):
        stim = random_stimulus(
            result.program.graph, array_size=16, seed=batch
        )
        ref = evaluate_graph(result.program.graph, stim)
        out_t, out_c = trace.run(stim), cycle.run(stim)
        for name, word in ref.items():
            assert np.array_equal(out_t.outputs[name], word), name
            assert np.array_equal(out_c.outputs[name], word), name
        assert out_t.switch_routes == out_c.switch_routes
    benchmark(
        trace.run,
        random_stimulus(result.program.graph, array_size=16, seed=0),
    )


def test_table2_model_ordering(benchmark):
    """LeNet-5 (tiny) must be the fastest model, VGG16/Mixer-B the slowest —
    the paper's intra-column ordering."""
    models, evals = _evaluations()
    benchmark(lambda: None)
    fps = {m.name: evals[m.name].fps for m, _ in models}
    assert fps["LENET5"] > fps["VGG16"]
    assert fps["LENET5"] > fps["MLPMixer-B/4"]
    assert fps["MLPMixer-S/4"] > fps["MLPMixer-B/4"]
