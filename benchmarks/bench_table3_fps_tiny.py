"""Table III: FPS on the extreme-throughput models (NID, JSC-M, JSC-L).

The honest result the paper reports: fixed-function pipelines (LogicNets,
Google+CERN hls4ml, the FINN MVU of [1]) beat the programmable LPU on tiny
models — "LogicNets have higher frames per second than our design.
However, they cannot use the same hardware for the other models."

Baseline columns are the paper's carried numbers; the LPU column is our
measured compile+schedule; the LogicNets analytical model supplies the
replication counts that explain the huge reported figures.
"""

import numpy as np
from conftest import publish

from repro.analysis import render_table
from repro.baselines import LogicNetsModel, PAPER_REPORTED_FPS
from repro.core import PAPER_CONFIG, compile_ffcl
from repro.engine import Session
from repro.lpu import evaluate_graph, random_stimulus
from repro.models import (
    evaluate_model,
    jsc_l_workload,
    jsc_m_workload,
    layer_block,
    nid_workload,
)

_CACHE = {}


def _evaluations():
    if "evals" not in _CACHE:
        models = [nid_workload(), jsc_m_workload(), jsc_l_workload()]
        _CACHE["evals"] = (
            models,
            {
                m.name: evaluate_model(m, PAPER_CONFIG, sample_neurons=6)
                for m in models
            },
        )
    return _CACHE["evals"]


def test_table3_fps_comparison(benchmark):
    models, evals = _evaluations()
    benchmark(evaluate_model, models[0], PAPER_CONFIG, sample_neurons=6)

    ln = LogicNetsModel()
    rows = []
    for m in models:
        reported = PAPER_REPORTED_FPS[m.name]
        rows.append(
            [
                m.name,
                reported.get("LogicNets"),
                reported.get("Google+CERN"),
                reported.get("FINN-MVU"),
                evals[m.name].fps,
                reported.get("LPU (paper)"),
                f"x{ln.parallel_instances(m)}",
            ]
        )
    publish(
        "table3_fps_tiny",
        render_table(
            "Table III — FPS, high-throughput models (LPV count 16)",
            ["model", "LogicNets [17]", "Google+CERN [8]", "FINN-MVU [1]",
             "LPU (ours, measured)", "LPU (paper)", "LN replication"],
            rows,
        ),
    )

    # Shape: hardened pipelines beat the programmable LPU on tiny models.
    for m in models:
        reported_ln = PAPER_REPORTED_FPS[m.name]["LogicNets"]
        assert reported_ln > evals[m.name].fps, m.name
    # ... and our measured LPU lands within an order of magnitude of the
    # paper's measured LPU on NID (the closest-comparable workload).
    ours = evals["NID"].fps
    paper = PAPER_REPORTED_FPS["NID"]["LPU (paper)"]
    assert 0.1 < ours / paper < 10.0


def test_table3_measured_execution(benchmark):
    """Execute the NID first-layer sampled block through the engine layer:
    trace == cycle == functional, so the throughput claims rest on an
    execution path that is actually verified, not just projected."""
    layer = nid_workload().layers[0]
    block, _ = layer_block(layer, sample_neurons=6, seed=0)
    result = compile_ffcl(block, PAPER_CONFIG)
    trace = Session(result.program, engine="trace")
    cycle = Session(result.program, engine="cycle")
    stim = random_stimulus(result.program.graph, array_size=16, seed=0)
    ref = evaluate_graph(result.program.graph, stim)
    out_t, out_c = trace.run(stim), cycle.run(stim)
    for name, word in ref.items():
        assert np.array_equal(out_t.outputs[name], word), name
        assert np.array_equal(out_c.outputs[name], word), name
    assert out_t.macro_cycles == out_c.macro_cycles
    benchmark(trace.run, stim)


def test_table3_programmability_tradeoff(benchmark):
    """The LPU runs all three models on ONE configuration; LogicNets needs
    a new bitstream per model (reprogrammable() is False)."""
    models, evals = _evaluations()
    benchmark(lambda: None)
    assert not LogicNetsModel().reprogrammable()
    assert len({PAPER_CONFIG.describe()}) == 1  # same hardware for all
    for m in models:
        assert evals[m.name].fps > 1e5  # still megasamples/s territory
