"""Whole-model pipelined throughput: the stage pipeline vs serial chains.

A compiled model ships as a format-v2 ``.lpa`` bundle — N member
programs plus a dataflow manifest (PR 9).  The
:class:`~repro.pipeline.PipelineExecutor` runs one engine per stage on
its own thread with bounded inter-stage queues, so stage ``k`` of batch
``i`` overlaps stage ``k+1`` of batch ``i-1``.  This bench builds a
4-stage chain of random DAG blocks, streams a batch train through it,
and asserts the acceptance properties:

* **>= 1.5x steady-state whole-model throughput** over serial per-stage
  ``Session.run`` on hosts with >= 4 cores (the speedup ratio is
  archived on every host, asserted only where the cores exist to earn
  it);
* **single-batch latency within 10% of serial** (best-of-N, same >= 4
  core gate — on a single core the pipelined path pays thread handoffs
  with nothing to overlap);
* **bit-identical outputs AND statistics** per batch, pipelined vs
  serial — including after a full format-v2 serialize/deserialize round
  trip — asserted everywhere;
* member programs round-trip **byte-for-byte** through the v2 container
  (the v1 per-program encoder is embedded verbatim).
"""

import os
import timeit

import numpy as np
from conftest import fast_mode, publish, publish_json

from repro.analysis import render_table
from repro.artifact import bundle_model, load_artifact_bytes
from repro.core import PAPER_CONFIG
from repro.lpu.functional import random_stimulus
from repro.netlist.random_graphs import random_dag
from repro.pipeline import PipelineExecutor, SerialChainRunner

STAGES = 4
WIDTH = 8  # PIs/POs per stage (stage k POs wire to stage k+1 PIs)
GATES = 300 if fast_mode() else 800
ARRAY_SIZE = 256 if fast_mode() else 2048
BATCHES = 12 if fast_mode() else 32
DEPTH = 4
LATENCY_REPEATS = 5
MIN_SPEEDUP = 1.5
MAX_LATENCY_RATIO = 1.1
MIN_CORES = 4

_CACHE = {}


def _bundle():
    if "bundle" not in _CACHE:
        graphs = [
            random_dag(WIDTH, GATES, WIDTH, seed=seed)
            for seed in range(STAGES)
        ]
        wirings = [
            {f"x{j}": f"y{j}" for j in range(WIDTH)}
        ] * (STAGES - 1)
        _CACHE["bundle"] = bundle_model(
            graphs,
            PAPER_CONFIG,
            wirings=wirings,
            name="bench_pipeline",
            probe_words=2,
        )
    return _CACHE["bundle"]


def _identical(a, b) -> bool:
    """Outputs AND every statistic equal — the pipeline's contract."""
    if set(a.outputs) != set(b.outputs):
        return False
    if any(
        not np.array_equal(a.outputs[name], b.outputs[name])
        for name in a.outputs
    ):
        return False
    return (
        a.macro_cycles,
        a.clock_cycles,
        a.compute_instructions_executed,
        a.switch_routes,
        a.peak_buffer_words,
        a.buffer_writes,
    ) == (
        b.macro_cycles,
        b.clock_cycles,
        b.compute_instructions_executed,
        b.switch_routes,
        b.peak_buffer_words,
        b.buffer_writes,
    )


def test_pipeline_throughput(benchmark):
    bundle = _bundle()
    benchmark(lambda: None)
    cores = os.cpu_count() or 1

    # The v2 round trip first: the throughput run below executes the
    # DESERIALIZED bundle, so bit-identity covers the format layer too.
    data = bundle.to_bytes()
    loaded = load_artifact_bytes(data)
    assert loaded.to_bytes() == data, "v2 container is not deterministic"
    for member, decoded in zip(bundle.members, loaded.members):
        assert member.to_bytes() == decoded.to_bytes(), (
            "member program bytes changed across the bundle round trip"
        )

    graph = loaded.reference_graph()
    stimuli = [
        random_stimulus(graph, array_size=ARRAY_SIZE, seed=seed)
        for seed in range(BATCHES)
    ]

    # Serial reference: per-stage Session.run on one thread, the exact
    # statistics reduction the executor applies.
    runner = SerialChainRunner(loaded)
    runner.run(stimuli[0])  # warm-up
    start = timeit.default_timer()
    serial_results = [runner.run(stim) for stim in stimuli]
    serial_seconds = timeit.default_timer() - start

    executor = PipelineExecutor(loaded, depth=DEPTH)
    try:
        executor.run(stimuli[0])  # warm-up
        executor.reset_stats()
        start = timeit.default_timer()
        piped_results = executor.map(stimuli)
        piped_seconds = timeit.default_timer() - start
        stats = executor.stats()

        serial_latency = min(
            timeit.repeat(
                lambda: runner.run(stimuli[0]),
                number=1,
                repeat=LATENCY_REPEATS,
            )
        )
        piped_latency = min(
            timeit.repeat(
                lambda: executor.run(stimuli[0]),
                number=1,
                repeat=LATENCY_REPEATS,
            )
        )
    finally:
        executor.close()

    for serial, piped in zip(serial_results, piped_results):
        assert _identical(serial, piped), (
            "pipelined result diverged from the serial reference"
        )
    probe_report = loaded.verify_probes()
    assert probe_report["passed"], probe_report

    speedup = serial_seconds / piped_seconds if piped_seconds > 0 else None
    latency_ratio = (
        piped_latency / serial_latency if serial_latency > 0 else None
    )
    scoreboard = stats["scoreboard"]
    assert scoreboard["retired"] == scoreboard["submitted"]
    assert scoreboard["in_flight"] == 0

    report = {
        "fast_mode": fast_mode(),
        "cores": cores,
        "stages": STAGES,
        "gates_per_stage": GATES,
        "array_size": ARRAY_SIZE,
        "batches": BATCHES,
        "depth": DEPTH,
        "samples_per_batch": 64 * ARRAY_SIZE,
        "serial_seconds": serial_seconds,
        "pipelined_seconds": piped_seconds,
        "speedup": speedup,
        "serial_latency_seconds": serial_latency,
        "pipelined_latency_seconds": piped_latency,
        "latency_ratio": latency_ratio,
        "asserted": cores >= MIN_CORES,
        "min_speedup": MIN_SPEEDUP,
        "max_latency_ratio": MAX_LATENCY_RATIO,
        "stage_occupancy": stats["stages"],
        "scoreboard": scoreboard,
    }
    rows = [
        [
            "serial per-stage Session.run",
            f"{BATCHES / serial_seconds:,.1f}",
            f"{serial_latency * 1e3:.2f}",
            "1.00x",
        ],
        [
            f"PipelineExecutor (depth {DEPTH})",
            f"{BATCHES / piped_seconds:,.1f}",
            f"{piped_latency * 1e3:.2f}",
            f"{speedup:.2f}x",
        ],
    ]
    publish(
        "pipeline",
        render_table(
            f"Whole-model pipeline — {STAGES} stages x {GATES} gates, "
            f"{BATCHES} batches x {64 * ARRAY_SIZE} samples, "
            f"{cores} core(s)",
            ["path", "batches/s", "latency ms", "speedup"],
            rows,
        ),
    )
    publish_json("pipeline", report)

    # The throughput/latency floors only exist where the cores do: on
    # fewer than MIN_CORES the stage threads time-slice one another and
    # the overlap has nothing to run on.  The ratio is archived above on
    # every host either way.
    if cores >= MIN_CORES:
        assert speedup >= MIN_SPEEDUP, (
            f"pipeline only {speedup:.2f}x over serial chains on "
            f"{cores} cores"
        )
        assert latency_ratio <= MAX_LATENCY_RATIO, (
            f"single-batch latency {latency_ratio:.2f}x serial"
        )


def test_pipeline_backpressure_lockstep(benchmark):
    """depth=1 (lockstep) must still retire everything bit-identically:
    the bounded queues are a correctness-neutral throughput knob."""
    bundle = _bundle()
    benchmark(lambda: None)
    graph = bundle.reference_graph()
    stimuli = [
        random_stimulus(graph, array_size=32, seed=100 + seed)
        for seed in range(6)
    ]
    runner = SerialChainRunner(bundle)
    with PipelineExecutor(bundle, depth=1) as executor:
        piped = executor.map(stimuli)
    for stim, result in zip(stimuli, piped):
        assert _identical(runner.run(stim), result)
