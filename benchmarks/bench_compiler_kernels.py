"""Micro-benchmarks of the compiler's kernels (partition / merge / schedule
/ codegen / simulate), tracking the toolchain's own performance."""


from repro.core import (
    LPUConfig,
    build_schedule,
    compile_ffcl,
    generate_program,
    merge_partition,
    partition,
)
from repro.lpu import random_stimulus, simulate
from repro.netlist import random_dag
from repro.synth import preprocess

CFG = LPUConfig(num_lpvs=8, lpes_per_lpv=8)
_G = random_dag(10, 400, 6, seed=77)
_PRE = preprocess(_G)


def test_kernel_preprocess(benchmark):
    benchmark(preprocess, _G)


def test_kernel_partition(benchmark):
    benchmark(partition, _PRE.graph, CFG.m)


def test_kernel_merge(benchmark):
    def run():
        return merge_partition(partition(_PRE.graph, CFG.m))

    benchmark(run)


def test_kernel_schedule(benchmark):
    part = merge_partition(partition(_PRE.graph, CFG.m))

    def run():
        return build_schedule(part, CFG)

    benchmark(run)


def test_kernel_codegen(benchmark):
    part = merge_partition(partition(_PRE.graph, CFG.m))
    sched = build_schedule(part, CFG)
    benchmark(generate_program, sched, _PRE.graph, CFG)


def test_kernel_end_to_end_compile(benchmark):
    benchmark(compile_ffcl, _G, CFG)


def test_kernel_simulate(benchmark):
    res = compile_ffcl(_G, CFG)
    stim = random_stimulus(_G, seed=1)
    result = benchmark(simulate, res.program, stim)
    assert result.macro_cycles == res.schedule.makespan
