"""Ablation A1: pipelined MFG streaming vs sequential MFG-at-a-time.

Section V-B's MFG-by-MFG paradigm overlaps consecutive MFGs across LPVs
(Fig. 5's back-to-back wavefronts).  This bench quantifies how much of the
LPU's throughput comes from that overlap, per model — motivating the
"computational resources allocated to MFG H are LPV in [Lbottom, Ltop]"
design against a naive one-MFG-at-a-time controller.
"""

from conftest import publish

from repro.analysis import geometric_mean, render_table
from repro.core import PAPER_CONFIG
from repro.models import all_models, evaluate_model, vgg16_paper_layers

SAMPLE_NEURONS = 6
_CACHE = {}


def _data():
    if "rows" not in _CACHE:
        rows = []
        speedups = []
        for model in all_models():
            layers = (
                vgg16_paper_layers(model)
                if model.name.startswith("VGG16")
                else None
            )
            pipe = evaluate_model(
                model, PAPER_CONFIG, policy="pipelined",
                sample_neurons=SAMPLE_NEURONS, layers=layers,
            )
            seq = evaluate_model(
                model, PAPER_CONFIG, policy="sequential",
                sample_neurons=SAMPLE_NEURONS, layers=layers,
            )
            speedup = pipe.fps / seq.fps
            speedups.append(speedup)
            rows.append([model.name, seq.fps, pipe.fps, f"{speedup:.2f}x"])
        _CACHE["rows"] = (rows, speedups)
    return _CACHE["rows"]


def test_ablation_pipelined_vs_sequential(benchmark):
    rows, speedups = _data()
    model = all_models()[4]  # JSC-M: small, representative
    benchmark(
        evaluate_model,
        model,
        PAPER_CONFIG,
        policy="sequential",
        sample_neurons=SAMPLE_NEURONS,
    )
    table = render_table(
        "Ablation — pipelined vs sequential MFG scheduling",
        ["model", "FPS sequential", "FPS pipelined", "pipeline gain"],
        rows,
    )
    summary = f"geomean pipeline gain: {geometric_mean(speedups):.2f}x"
    publish("ablation_pipeline", table + "\n\n" + summary)

    for row, speedup in zip(rows, speedups):
        assert speedup >= 1.0, row[0]
    assert geometric_mean(speedups) > 1.1
