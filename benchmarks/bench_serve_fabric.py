"""Distributed serving fabric: saturation throughput, tail latency, and
fleet warm boot.

The fabric (:mod:`repro.serve.fabric`) puts the serving stack on the
network: an asyncio HTTP front-end with admission control over the
batched worker pool, plus a ``/v1/store`` artifact endpoint feeding the
rest of the fleet.  This bench drives the shared load-generation
procedure (:func:`repro.serve.fabric.run_load_bench`) on a deep,
narrow random DAG (compute scales with gates x words, wire payload
only with PIs x words) and asserts the acceptance properties:

* **saturation** — a 4-worker fabric node (process workers sharing one
  fused-table arena) sustains **>= 1.5x requests/second over
  single-process in-process serve()** under closed-loop load, with
  p50/p99 latency reported.  The floor is gated only on machines with
  >= 4 CPU cores — the speedup comes from genuine parallel workers, so
  a single-core runner (where every extra process just time-slices) only
  checks bit-identity and records the measured ratio in the archived
  JSON with ``floor_enforced: false``.
* **bit identity** — every result that crossed the wire is identical —
  outputs AND statistics — to a direct in-process run (always gated).
* **fleet warm boot** — a second node booted against the first node's
  HTTP store reaches ready-to-serve with **zero compile passes** (its
  program cache resolves the executable over the wire), and serves
  bit-identically.
"""

import os

from conftest import fast_mode, publish, publish_json

from repro.artifact import HTTPStoreBackend
from repro.core import PAPER_CONFIG, compile_ffcl
from repro.engine import Session
from repro.lpu import random_stimulus
from repro.netlist import random_dag
from repro.serve import ServeConfig
from repro.serve.fabric import FabricClient, FabricNode, run_load_bench

#: a deep, narrow workload: 16 PIs feeding 24000 gates.  Compute per
#: request scales with gates x words while the wire payload scales with
#: PIs x words, so at this shape one request is ~19ms of engine time
#: against ~256KB of payload — the saturation floor then measures the
#: parallel workers, not HTTP framing or worker IPC.
GATES = 24000
NUM_PIS = 16
ARRAY_SIZE = 2048  # words per PI per request
REQUESTS = 48 if fast_mode() else 192
CLIENTS = 8
WORKERS = 4
MIN_SPEEDUP = 1.5
#: the saturation floor measures parallel workers beating one process —
#: it needs cores for the workers to run on.
MIN_CORES_FOR_FLOOR = 4

_CACHE = {}


def _compiled_block():
    if "result" not in _CACHE:
        graph = random_dag(
            num_inputs=NUM_PIS,
            num_gates=GATES,
            num_outputs=8,
            seed=1,
        )
        _CACHE["result"] = compile_ffcl(graph, PAPER_CONFIG)
    return _CACHE["result"]


def test_fabric_saturation_and_latency(benchmark):
    result = _compiled_block()
    benchmark(lambda: None)

    cores = os.cpu_count() or 1
    floor_enforced = cores >= MIN_CORES_FOR_FLOOR
    report = run_load_bench(
        result.program,
        # one request per engine run (no coalescing): with ms-scale
        # compute per request, throughput comes from requests running on
        # parallel workers, which is exactly what the floor measures.
        serving=ServeConfig(
            num_workers=WORKERS,
            backend="spawn",
            share_tables=True,
            max_batch_size=1,
            max_wait_ms=0.0,
        ),
        requests=REQUESTS,
        clients=CLIENTS,
        array_size=ARRAY_SIZE,
        mode="closed",
        baseline=True,
        verify=True,
    )
    report["floor"] = MIN_SPEEDUP
    report["floor_enforced"] = floor_enforced
    publish_json("serve_fabric_saturation", report)

    fabric = report["fabric"]
    lines = [
        f"fabric saturation (random_dag {NUM_PIS}x{GATES}, "
        f"{REQUESTS} requests x {report['samples_per_request']} samples, "
        f"{CLIENTS} closed-loop clients):",
        f"  fabric ({WORKERS} spawn workers): "
        f"{fabric['requests_per_second']:,.0f} req/s  "
        f"p50 {fabric['latency_p50_ms']:.2f}ms  "
        f"p99 {fabric['latency_p99_ms']:.2f}ms",
        f"  single-process serve():          "
        f"{report['baseline_single_process']['requests_per_second']:,.0f}"
        f" req/s",
        f"  speedup {report['speedup_vs_single_process']:.2f}x on "
        f"{cores} core(s) (floor {MIN_SPEEDUP}x "
        + (
            "enforced)"
            if floor_enforced
            else f"not enforced: < {MIN_CORES_FOR_FLOOR} cores)"
        ),
        f"  bit-identical over the wire: {report['bit_identical']}",
    ]
    publish("serve_fabric_saturation", "\n".join(lines))

    assert report["bit_identical"] is True
    assert fabric["latency_p50_ms"] <= fabric["latency_p99_ms"]
    assert fabric["rejections"] == 0  # closed loop never over-drives
    if floor_enforced:
        assert report["speedup_vs_single_process"] >= MIN_SPEEDUP, (
            f"fabric {report['speedup_vs_single_process']:.2f}x < "
            f"{MIN_SPEEDUP}x floor over single-process serve()"
        )


def test_fleet_warm_boot_zero_compiles(benchmark):
    result = _compiled_block()
    benchmark(lambda: None)
    graph = result.program.graph

    with FabricNode(graph, PAPER_CONFIG, serving=ServeConfig()) as warm:
        warm_cache = warm.stats()["server"]["cache"]
        assert warm_cache["disk_stores"] >= 1
        with FabricNode(
            graph,
            PAPER_CONFIG,
            serving=ServeConfig(store=HTTPStoreBackend(warm.store_url)),
        ) as cold:
            cold_cache = cold.stats()["server"]["cache"]
            stim = random_stimulus(graph, array_size=2, seed=1)
            expected = Session(result.program).run(stim)
            with FabricClient(cold.url) as client:
                got = client.infer(stim)

    report = {
        "warm_node_cache": warm_cache,
        "cold_node_cache": cold_cache,
        "bit_identical": all(
            (expected.outputs[name] == got.outputs[name]).all()
            for name in expected.outputs
        )
        and expected.macro_cycles == got.macro_cycles,
    }
    publish_json("serve_fabric_warm_boot", report)
    publish(
        "serve_fabric_warm_boot",
        f"fleet warm boot (random_dag {NUM_PIS}x{GATES}):\n"
        f"  warm node:  {warm_cache['disk_stores']} artifact(s) stored\n"
        f"  cold node:  {cold_cache['disk_hits']} store hit(s), "
        f"{cold_cache['disk_misses']} store miss(es) "
        "-> zero compile passes\n"
        f"  bit-identical over the wire: {report['bit_identical']}",
    )
    assert cold_cache["disk_hits"] >= 1
    assert cold_cache["disk_misses"] == 0
    assert report["bit_identical"] is True
