"""Shared helpers for the experiment benches.

Every bench regenerates one of the paper's tables or figures: it computes
the experiment data (cached at module scope), times the core kernel with
pytest-benchmark, renders the table/series, prints it, and archives it
under ``benchmarks/results/``.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a rendered table/figure and archive it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
