"""Shared helpers for the experiment benches.

Every bench regenerates one of the paper's tables or figures: it computes
the experiment data (cached at module scope), times the core kernel with
pytest-benchmark, renders the table/series, prints it, and archives it
under ``benchmarks/results/``.

Setting ``REPRO_BENCH_FAST=1`` (CI's bench-smoke job) makes the
throughput benches shrink their run counts to smoke-test proportions;
machine-readable results are archived as JSON next to the text tables so
CI can upload them as artifacts.
"""

import json
import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def fast_mode() -> bool:
    """True when benches should run at CI smoke-test scale."""
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def publish(name: str, text: str) -> None:
    """Print a rendered table/figure and archive it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def publish_json(name: str, data) -> None:
    """Archive a machine-readable result (uploaded as a CI artifact)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"[json] {path}")
