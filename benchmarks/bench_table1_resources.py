"""Table I: FPGA resource utilization of the LPU (LPV count = 16).

Paper row: 478K FF (20.2%), 433K LUT (36.7%), 12240 Kb BRAM (15.8%),
333 MHz on a Xilinx VU9P.  The bench derives utilization from the
architecture model and also sweeps LPV counts to show where the design
stops fitting the device.
"""

from conftest import publish

from repro.analysis import render_table
from repro.baselines import LPUResourceModel, PAPER_TABLE1
from repro.core import LPUConfig, PAPER_CONFIG


def _rows():
    model = LPUResourceModel()
    rows = []
    for n in (4, 8, 16, 32, 64):
        est = model.estimate(LPUConfig(num_lpvs=n))
        rows.append(
            [
                f"n={n}" + (" (paper)" if n == 16 else ""),
                f"{est.flip_flops / 1e3:.0f}K",
                f"{est.ff_fraction:.1%}",
                f"{est.luts / 1e3:.0f}K",
                f"{est.lut_fraction:.1%}",
                f"{est.bram_kb}",
                f"{est.bram_fraction:.1%}",
                f"{est.frequency_hz / 1e6:.0f}",
                "yes" if est.fits() else "NO",
            ]
        )
    return rows


def test_table1_resource_model(benchmark):
    model = LPUResourceModel()
    est = benchmark(model.estimate, PAPER_CONFIG)

    rows = _rows()
    rows.append(
        [
            "paper (n=16)",
            f"{PAPER_TABLE1['FF'] / 1e3:.0f}K",
            f"{PAPER_TABLE1['FF%']:.1%}",
            f"{PAPER_TABLE1['LUT'] / 1e3:.0f}K",
            f"{PAPER_TABLE1['LUT%']:.1%}",
            f"{PAPER_TABLE1['BRAM_Kb']}",
            f"{PAPER_TABLE1['BRAM%']:.1%}",
            f"{PAPER_TABLE1['FREQ_Hz'] / 1e6:.0f}",
            "yes",
        ]
    )
    publish(
        "table1_resources",
        render_table(
            "Table I — LPU resource utilization (VU9P)",
            ["config", "FF", "FF%", "LUT", "LUT%", "BRAM(Kb)", "BRAM%",
             "MHz", "fits"],
            rows,
        ),
    )
    assert abs(est.flip_flops - PAPER_TABLE1["FF"]) / PAPER_TABLE1["FF"] < 0.25
    assert abs(est.luts - PAPER_TABLE1["LUT"]) / PAPER_TABLE1["LUT"] < 0.25
    assert abs(est.bram_kb - PAPER_TABLE1["BRAM_Kb"]) / PAPER_TABLE1["BRAM_Kb"] < 0.25
