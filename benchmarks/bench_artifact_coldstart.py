"""Artifact cold-start: ready-to-serve from a warm ArtifactStore vs compiling.

The whole point of ahead-of-time artifacts (:mod:`repro.artifact`) is that
the expensive half of serving — netlist pre-processing, MFG partitioning,
scheduling, instruction generation, trace lowering — happens once, offline,
and every later process boots from the serialized executable.  This bench
measures exactly that boundary on the VGG16 largest-layer workload:

1. **recompile** — a fresh :class:`~repro.serve.ProgramCache` with no disk
   tier resolves the workload by compiling it (what every cold process
   paid before this subsystem existed),
2. **warm store** — a fresh cache in a "new process" role, pointed at a
   warm :class:`~repro.artifact.ArtifactStore`, resolves the same workload
   by deserializing the ``.lpa`` blob: zero compile passes (asserted via
   the cache's compile/pass-cache counters), embedded trace tables, and
   bit-identical execution (asserted).

Acceptance property: **ready-to-serve from the warm store is >= 5x faster
than recompiling.**  ``REPRO_BENCH_FAST=1`` shrinks the sampled block.
"""

import shutil
import tempfile
import time

import numpy as np
from conftest import fast_mode, publish, publish_json

from repro.analysis import render_table
from repro.artifact import ArtifactStore
from repro.core import PAPER_CONFIG
from repro.engine import Session
from repro.lpu import random_stimulus
from repro.models import layer_block, vgg16_paper_layers, vgg16_workload
from repro.serve import ProgramCache

SAMPLE_NEURONS = 16 if fast_mode() else 24
MIN_SPEEDUP = 5.0


def _block():
    model = vgg16_workload()
    layer = max(vgg16_paper_layers(model), key=lambda l: l.num_neurons)
    block, _ = layer_block(layer, sample_neurons=SAMPLE_NEURONS, seed=0)
    return layer, block


def test_artifact_coldstart(benchmark):
    layer, block = _block()
    benchmark(lambda: None)
    root = tempfile.mkdtemp(prefix="repro-artifact-bench-")
    try:
        store = ArtifactStore(root)

        # Offline: one compile populates the store with the .lpa blob.
        seed_cache = ProgramCache(store=store)
        seed_entry = seed_cache.get_or_compile(block, PAPER_CONFIG)
        assert seed_cache.stats.disk_stores == 1

        # Cold path 1: recompile from scratch (no disk tier).
        start = time.perf_counter()
        cold_cache = ProgramCache()
        cold_entry = cold_cache.get_or_compile(block, PAPER_CONFIG)
        cold_session = Session(cold_entry.program, engine="trace")
        recompile_seconds = time.perf_counter() - start

        # Cold path 2: a "new process" resolving from the warm store.
        start = time.perf_counter()
        warm_cache = ProgramCache(store=store)
        warm_entry = warm_cache.get_or_compile(block, PAPER_CONFIG)
        warm_session = Session(warm_entry.artifact, engine="trace")
        warm_seconds = time.perf_counter() - start

        # Zero compilation on the warm path: no CompileResult was built
        # and the pass pipeline never even looked anything up.
        assert warm_entry.compile_result is None
        assert warm_cache.stats.disk_hits == 1
        assert warm_cache.pass_cache.stats.lookups == 0

        # Same executable, bit for bit.
        stim = random_stimulus(cold_entry.program.graph, 2, seed=0)
        got = warm_session.run(stim)
        ref = cold_session.run(stim)
        for name, word in ref.outputs.items():
            assert np.array_equal(got.outputs[name], word), name
        assert got.macro_cycles == ref.macro_cycles
        assert seed_entry.program.num_compute_instructions == \
            warm_entry.program.num_compute_instructions

        speedup = recompile_seconds / warm_seconds if warm_seconds else 0.0
        blob_bytes = store.stats.bytes_read
        report = {
            "workload": f"vgg16 {layer.name} (sample {SAMPLE_NEURONS})",
            "fast_mode": fast_mode(),
            "recompile_seconds": recompile_seconds,
            "warm_store_seconds": warm_seconds,
            "speedup": speedup,
            "artifact_bytes_read": blob_bytes,
            "min_speedup": MIN_SPEEDUP,
        }
        rows = [
            ["recompile (no store)", f"{recompile_seconds * 1e3:,.1f}",
             "1.0x"],
            ["warm ArtifactStore", f"{warm_seconds * 1e3:,.1f}",
             f"{speedup:,.1f}x"],
        ]
        publish(
            "artifact_coldstart",
            render_table(
                f"Ready-to-serve cold start — vgg16 {layer.name} sampled "
                f"block (fast={fast_mode()})",
                ["path", "ms to ready", "speedup"],
                rows,
            ),
        )
        publish_json("artifact_coldstart", report)

        # Fast mode still checks the property but relaxes the bar: in the
        # combined CI smoke run, earlier benches leave the CPU warm and
        # shrink the recompile baseline this ratio divides by.
        floor = 3.5 if fast_mode() else MIN_SPEEDUP
        assert speedup >= floor, (
            f"warm-store cold start only {speedup:.1f}x faster than "
            f"recompiling (need >= {floor}x)"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
