"""Fault recovery under chaos: a supervised fabric node keeps serving
bit-identically while a worker is killed and responses are dropped.

The fault-tolerance layer (:mod:`repro.serve.faults`) leans on the same
property every other bench asserts: inference is pure and
bit-deterministic, so any lost work — a dead worker's in-flight batch, a
response that vanished on the wire — can be re-executed and the caller
cannot tell.  This bench drives a seeded :class:`FaultPlan` through a
4-worker spawn-backed :class:`FabricNode` and asserts the acceptance
properties:

* **survival** — with one worker killed mid-load and ~1% of responses
  dropped before the bytes hit the socket, a resilient client
  (:class:`RetryPolicy` + redial) still completes **>= 99%** of
  requests, and every success is **bit-identical — outputs AND
  statistics — to a direct in-process run** over the same words.
* **supervision** — the pool reports the kill as a restart in
  ``stats()`` and finishes with its full worker complement.
* **reproducibility** — re-running the same seed against a fresh node
  yields an **identical injector event log**, occurrence for
  occurrence: the chaos itself is a deterministic, replayable input.
"""

import random

from conftest import fast_mode, publish, publish_json

from repro.core import PAPER_CONFIG, compile_ffcl
from repro.engine import Session
from repro.lpu import random_stimulus
from repro.netlist import random_dag
from repro.serve import FaultInjector, FaultPlan, ServeConfig
from repro.serve.fabric import FabricClient, FabricNode, RetryPolicy

#: wide enough that each request is real engine work, small enough that
#: two full chaos passes (the reproducibility check runs everything
#: twice) stay in bench-smoke territory.
GATES = 4000
NUM_PIS = 16
ARRAY_SIZE = 256
REQUESTS = 32 if fast_mode() else 128
WORKERS = 4
DROP_RATE = 0.01
SEED = 20230710  # pinned: CI replays the same chaos every run
MIN_SUCCESS = 0.99

_CACHE = {}


def _compiled_block():
    if "result" not in _CACHE:
        graph = random_dag(
            num_inputs=NUM_PIS,
            num_gates=GATES,
            num_outputs=8,
            seed=1,
        )
        _CACHE["result"] = compile_ffcl(graph, PAPER_CONFIG)
    return _CACHE["result"]


def _chaos_plan() -> FaultPlan:
    """One worker killed mid-load + ~1% response drops, all seeded."""
    plan = FaultPlan().crash_worker(1, at=REQUESTS // 2)
    rng = random.Random(SEED)
    for occurrence in range(REQUESTS):
        if rng.random() < DROP_RATE:
            plan = plan.drop_response(at=occurrence)
    return plan


def _run_chaos_pass(program, stimuli, expected):
    """Serve every stimulus through a freshly-injected node.

    Returns ``(outcomes, event_log, pool_stats)`` where each outcome is
    ``"ok"`` (verified bit-identical) or the typed error name.
    """
    injector = FaultInjector(_chaos_plan())
    serving = ServeConfig(
        num_workers=WORKERS,
        backend="spawn",
        share_tables=True,
        max_batch_size=1,
        max_wait_ms=0.0,
        default_deadline_ms=60_000.0,
        injector=injector,
    )
    outcomes = []
    # serve the exact compiled program (not its graph) so the expected
    # in-process results come from bit-for-bit the same executable
    with FabricNode(program, PAPER_CONFIG, serving=serving) as node:
        retry = RetryPolicy(max_attempts=4, backoff_s=0.001)
        with FabricClient(node.url, retry=retry, injector=injector) as client:
            for index, stim in enumerate(stimuli):
                try:
                    got = client.infer(stim)
                except Exception as exc:  # typed errors only, counted below
                    outcomes.append(type(exc).__name__)
                    continue
                bit_identical = all(
                    (expected[index].outputs[name] == got.outputs[name]).all()
                    for name in expected[index].outputs
                ) and all(
                    getattr(expected[index], field) == getattr(got, field)
                    for field in (
                        "macro_cycles",
                        "clock_cycles",
                        "compute_instructions_executed",
                        "switch_routes",
                        "peak_buffer_words",
                        "buffer_writes",
                    )
                )
                outcomes.append("ok" if bit_identical else "MISMATCH")
        pool_stats = node.stats()["server"]["pool"]
    return outcomes, injector.event_log(), pool_stats


def test_fault_recovery_under_chaos(benchmark):
    result = _compiled_block()
    benchmark(lambda: None)

    stimuli = [
        random_stimulus(
            result.program.graph, array_size=ARRAY_SIZE, seed=100 + i
        )
        for i in range(REQUESTS)
    ]
    session = Session(result.program)
    expected = [session.run(stim) for stim in stimuli]

    outcomes, log_a, pool_stats = _run_chaos_pass(
        result.program, stimuli, expected
    )
    outcomes_b, log_b, _ = _run_chaos_pass(result.program, stimuli, expected)

    ok = outcomes.count("ok")
    injected = {"crash_worker": 0, "drop_response": 0}
    for _site, _occurrence, kind, _param in log_a:
        injected[kind] = injected.get(kind, 0) + 1

    report = {
        "requests": REQUESTS,
        "workers": WORKERS,
        "seed": SEED,
        "succeeded_bit_identical": ok,
        "success_floor": MIN_SUCCESS,
        "outcomes": sorted(set(outcomes)),
        "injected": injected,
        "event_log": [list(event) for event in log_a],
        "event_log_reproducible": log_a == log_b,
        "pool_restarts": pool_stats["total_restarts"],
        "replaced_batches": pool_stats["replaced_batches"],
    }
    publish_json("fault_recovery", report)
    publish(
        "fault_recovery",
        "\n".join(
            [
                f"fault recovery (random_dag {NUM_PIS}x{GATES}, "
                f"{REQUESTS} requests, {WORKERS} spawn workers, "
                f"seed {SEED}):",
                f"  injected: {injected['crash_worker']} worker kill(s), "
                f"{injected['drop_response']} response drop(s)",
                f"  served bit-identical: {ok}/{REQUESTS} "
                f"(floor {MIN_SUCCESS:.0%})",
                f"  pool restarts: {pool_stats['total_restarts']}  "
                f"re-placed batches: {pool_stats['replaced_batches']}",
                "  same seed, fresh node -> identical event log: "
                f"{report['event_log_reproducible']}",
            ]
        ),
    )

    assert "MISMATCH" not in outcomes
    assert ok >= MIN_SUCCESS * REQUESTS, f"only {ok}/{REQUESTS} served"
    assert injected["crash_worker"] == 1
    assert pool_stats["total_restarts"] >= 1
    assert pool_stats["num_workers"] == WORKERS
    assert log_a == log_b, "same seed must replay the same chaos"
