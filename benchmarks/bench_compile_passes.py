"""Per-pass compile-time benchmark (the pass-manager instrumentation).

Times every pass of the ``paper`` pipeline over the Table II model
workloads, then:

* asserts the parallel per-MFG codegen pass is >= 2x faster than the
  sequential reference generator on the largest Table II workload (the
  emit phase is restructured around interned ports and precomputed fanin
  tables, so the win holds even on one core — a thread pool then overlaps
  per-MFG emission on multi-core hosts), while producing a bit-identical
  program,
* asserts a pass-cache-warm recompile is >= 2x faster than the cold
  compile and returns identical artifacts (it should be near-free: every
  pass is served from the cache).

Results are archived as JSON for the CI bench-smoke artifact.
``REPRO_BENCH_FAST=1`` shrinks the workload sample sizes to smoke-test
proportions.
"""

import time

from conftest import fast_mode, publish, publish_json

from repro.compiler import (
    PassCache,
    format_pass_report,
    generate_program_parallel,
    records_as_dicts,
)
from repro.core import PAPER_CONFIG, compile_ffcl
from repro.core.codegen import generate_program
from repro.models import (
    layer_block,
    lenet5_workload,
    mlpmixer_s4_workload,
    vgg16_paper_layers,
    vgg16_workload,
)

#: sampled neurons per block: (report models, largest Table II workload).
SAMPLE_NEURONS = 4 if fast_mode() else 8
LARGE_SAMPLE_NEURONS = 24 if fast_mode() else 96
SPEEDUP_FLOOR = 1.5 if fast_mode() else 2.0
REPEATS = 3 if fast_mode() else 7

_CACHE = {}


def _largest_layer(model):
    return max(model.layers, key=lambda layer: layer.num_neurons)


def _model_blocks():
    """(model name, sampled FFCL block) for the Table II models."""
    if "blocks" not in _CACHE:
        vgg = vgg16_workload()
        vgg_layer = max(
            vgg16_paper_layers(vgg), key=lambda layer: layer.num_neurons
        )
        blocks = [
            ("VGG16", layer_block(vgg_layer, SAMPLE_NEURONS, seed=0)[0]),
            (
                "LENET5",
                layer_block(
                    _largest_layer(lenet5_workload()), SAMPLE_NEURONS, seed=0
                )[0],
            ),
            (
                "MLPMixer-S/4",
                layer_block(
                    _largest_layer(mlpmixer_s4_workload()),
                    SAMPLE_NEURONS,
                    seed=0,
                )[0],
            ),
        ]
        _CACHE["blocks"] = blocks
    return _CACHE["blocks"]


def _large_block():
    """The largest Table II workload: VGG16's widest conv layer."""
    if "large" not in _CACHE:
        vgg = vgg16_workload()
        layer = max(vgg16_paper_layers(vgg), key=lambda layer: layer.num_neurons)
        _CACHE["large"] = layer_block(layer, LARGE_SAMPLE_NEURONS, seed=0)[0]
    return _CACHE["large"]


def _best(fn, *args, repeats=REPEATS):
    elapsed = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        elapsed.append(time.perf_counter() - start)
    return min(elapsed)


def _programs_identical(a, b):
    return (
        a.queues == b.queues
        and a.input_reads == b.input_reads
        and a.circulation_reads == b.circulation_reads
        and a.buffer_writes == b.buffer_writes
        and a.po_nodes == b.po_nodes
        and a.po_buffer_keys == b.po_buffer_keys
        and a.peak_buffer_words == b.peak_buffer_words
        and a.buffer_spills == b.buffer_spills
    )


def test_pass_timing_report(benchmark):
    """Per-pass wall time and artifact sizes for every model workload."""
    blocks = _model_blocks()
    per_model = {}
    tables = []
    for name, block in blocks:
        result = compile_ffcl(block, PAPER_CONFIG)
        per_model[name] = {
            "gates": block.num_gates,
            "passes": records_as_dicts(result.pass_records),
            "total_seconds": sum(r.seconds for r in result.pass_records),
        }
        tables.append(
            f"{name} ({block.num_gates} gates)\n"
            + format_pass_report(result.pass_records)
        )
        names = [r.name for r in result.pass_records]
        assert names[-1] == "metrics" and "codegen" in names
    publish("compile_passes_timing", "\n\n".join(tables))
    publish_json("compile_passes_timing", per_model)
    benchmark(compile_ffcl, blocks[0][1], PAPER_CONFIG)


def test_parallel_codegen_speedup(benchmark):
    """Parallel codegen >= 2x the sequential reference, bit-identically,
    on the largest Table II workload."""
    block = _large_block()
    result = compile_ffcl(block, PAPER_CONFIG)
    schedule, balanced = result.schedule, result.preprocess.graph

    reference = generate_program(schedule, balanced, PAPER_CONFIG)
    assert _programs_identical(reference, result.program)

    t_reference = _best(generate_program, schedule, balanced, PAPER_CONFIG)
    t_parallel = _best(
        generate_program_parallel, schedule, balanced, PAPER_CONFIG
    )
    speedup = t_reference / t_parallel
    data = {
        "workload": "VGG16 widest conv (Table II)",
        "gates": balanced.num_gates,
        "mfgs": result.partition.num_mfgs,
        "sequential_seconds": t_reference,
        "parallel_seconds": t_parallel,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
        "fast_mode": fast_mode(),
    }
    publish_json("compile_passes_codegen_speedup", data)
    benchmark(generate_program_parallel, schedule, balanced, PAPER_CONFIG)
    assert speedup >= SPEEDUP_FLOOR, data


def test_pass_cache_warm_compile(benchmark):
    """A pass-cache-warm recompile is near-free and artifact-identical."""
    block = _model_blocks()[0][1]
    cache = PassCache()
    t_cold_start = time.perf_counter()
    cold = compile_ffcl(block, PAPER_CONFIG, pass_cache=cache)
    t_cold = time.perf_counter() - t_cold_start
    t_warm_start = time.perf_counter()
    warm = compile_ffcl(block, PAPER_CONFIG, pass_cache=cache)
    t_warm = time.perf_counter() - t_warm_start

    assert all(
        record.cache_hit
        for record in warm.pass_records
        if record.name != "ingest"  # ingest is deliberately uncached
    )
    assert warm.program is cold.program
    assert warm.schedule is cold.schedule
    assert warm.metrics is cold.metrics
    speedup = t_cold / t_warm
    publish_json(
        "compile_passes_warm_cache",
        {
            "cold_seconds": t_cold,
            "warm_seconds": t_warm,
            "speedup": speedup,
            "hit_rate": cache.stats.hit_rate,
        },
    )
    benchmark(compile_ffcl, block, PAPER_CONFIG, pass_cache=cache)
    assert speedup >= 2.0, (t_cold, t_warm)
