"""Delta streaming: event-driven incremental execution vs dense re-run.

The paper's flagship throughput deployments — network intrusion detection
and jet-substructure triggers — are *streams*: consecutive samples differ
in a handful of bits, so a dense engine recomputes a table whose values
almost all match the previous step's.  The delta engine
(:mod:`repro.engine.delta`) keeps that table and sweeps only the dirty
cone.  This bench pins down the contract that makes it safe to deploy:

* >= 3x higher steps/second than the fused engine on a 1-bit-flip-per-
  step NID stream (a stack of sampled NID layer blocks),
* <= 1.3x slowdown vs fused on fully random streams, with the dense
  fallback demonstrably engaged (worst case costs ~one fused run),
* bit-identical — outputs AND statistics — to the fused engine over all
  seven model workloads, including sessions booted from an ``.lpa``
  artifact round-trip with the fanout tables embedded.
"""

import numpy as np
from conftest import fast_mode, publish, publish_json

from repro.analysis import render_table
from repro.artifact import ExecutableArtifact
from repro.core import LPUConfig, compile_ffcl
from repro.engine import Session
from repro.lpu import evaluate_graph, random_stimulus
from repro.models import (
    jsc_l_workload,
    jsc_m_workload,
    layer_block,
    lenet5_workload,
    mlpmixer_b4_workload,
    mlpmixer_s4_workload,
    nid_workload,
    vgg16_workload,
)
from repro.netlist.compose import merge_parallel
from repro.serve import run_stream_bench
from repro.serve.stream import make_stream

SAMPLE_NEURONS = 32 if fast_mode() else 100
STEPS = 64 if fast_mode() else 128
REPS = 3 if fast_mode() else 5
STACK_LAYERS = 3

#: every repro.models workload generator (identity must hold on all 7).
MODEL_FACTORIES = [
    vgg16_workload,
    lenet5_workload,
    mlpmixer_s4_workload,
    mlpmixer_b4_workload,
    nid_workload,
    jsc_m_workload,
    jsc_l_workload,
]
PARITY_CONFIG = LPUConfig(num_lpvs=4, lpes_per_lpv=8)

_CACHE = {}


def _nid_stack():
    """Sampled neuron cones from the first ``STACK_LAYERS`` NID layers,
    merged over the shared input space — a deep enough block that dense
    re-execution has real work to skip."""
    if "block" not in _CACHE:
        model = nid_workload()
        blocks = [
            layer_block(
                model.layers[i], sample_neurons=SAMPLE_NEURONS, seed=i
            )[0]
            for i in range(STACK_LAYERS)
        ]
        _CACHE["block"] = merge_parallel(blocks, name="nid_stream_stack")
    return _CACHE["block"]


def _stats_tuple(result):
    return (
        result.macro_cycles,
        result.clock_cycles,
        result.compute_instructions_executed,
        result.switch_routes,
        result.peak_buffer_words,
        result.buffer_writes,
    )


def test_delta_bit_identical_all_models(benchmark):
    """Delta == fused — outputs and statistics, over stateful stream
    histories — on all 7 model workloads, including a session booted
    from an .lpa round-trip with the fanout tables embedded."""
    checked = 0
    for factory in MODEL_FACTORIES:
        model = factory()
        layer = min(model.layers, key=lambda l: (l.fan_in, l.num_neurons))
        block, _ = layer_block(layer, sample_neurons=2, seed=0)
        result = compile_ffcl(block, PARITY_CONFIG)
        graph = result.program.graph
        # The streaming deployment path: serialize with the fanout/cone
        # tables embedded, reload, boot the delta engine from the bytes.
        artifact = ExecutableArtifact.from_bytes(
            result.to_artifact(fanout=True).to_bytes()
        )
        assert artifact.fanout is not None, factory.__name__
        sessions = {
            "fused": Session(result.program, engine="fused"),
            "delta": Session(result.program, engine="delta"),
            "delta/artifact": artifact.session(engine="delta"),
        }
        for array_size in (1, 4):
            stream = make_stream(
                graph, steps=6, flip_bits=1, array_size=array_size, seed=7
            )
            for stim in stream:
                reference = evaluate_graph(graph, stim)
                results = {
                    name: session.run(stim)
                    for name, session in sessions.items()
                }
                baseline = _stats_tuple(results["fused"])
                for name, run in results.items():
                    for po, word in reference.items():
                        assert np.array_equal(run.outputs[po], word), (
                            factory.__name__, name, po,
                        )
                    assert _stats_tuple(run) == baseline, (
                        factory.__name__, name,
                    )
            checked += 1
    assert checked == 2 * len(MODEL_FACTORIES)
    block = _nid_stack()
    program = compile_ffcl(block, PARITY_CONFIG).program
    stim = random_stimulus(block, array_size=1, seed=0)
    session = Session(program, engine="delta")
    session.run(stim)
    benchmark(session.run, stim)


def test_delta_streaming_speedup(benchmark):
    """The headline numbers: low-entropy NID stream speedup, random-
    stream worst case with the dense fallback engaged, JSC measured
    informationally — all through :func:`run_stream_bench` (the same
    driver behind ``repro stream-bench``)."""
    block = _nid_stack()

    low = run_stream_bench(
        block, PARITY_CONFIG, steps=STEPS, flip_bits=1, reps=REPS
    )
    rand = run_stream_bench(
        block, PARITY_CONFIG, steps=max(STEPS // 2, 16),
        random_stream=True, reps=REPS,
    )
    jsc_block, _ = layer_block(
        jsc_m_workload().layers[0], sample_neurons=SAMPLE_NEURONS, seed=0
    )
    jsc = run_stream_bench(
        jsc_block, PARITY_CONFIG, steps=STEPS, flip_bits=1, reps=REPS
    )

    program = compile_ffcl(block, PARITY_CONFIG).program
    stream = make_stream(block, steps=4, flip_bits=1, seed=0)
    session = Session(program, engine="delta")
    for stim in stream:
        session.run(stim)
    benchmark(session.run, stream[-1])

    low_speedup = low["speedup"]
    rand_slowdown = (
        rand["streaming"]["seconds"] / rand["baseline"]["seconds"]
    )
    rows = [
        [
            "NID stream (1 flip/step)", f"{low_speedup:.2f}x faster",
            ">= 3.00x", f"{low['steps']} steps, "
            f"{low['delta']['sparse_runs']} sparse runs",
        ],
        [
            "NID random stream", f"{rand_slowdown:.2f}x slower",
            "<= 1.30x", f"{rand['delta']['dense_fallback_runs']} dense "
            "fallback runs",
        ],
        [
            "JSC-M stream (1 flip/step)", f"{jsc['speedup']:.2f}x faster",
            "(informational)", f"{jsc['steps']} steps",
        ],
    ]
    publish(
        "delta_streaming",
        render_table(
            f"Delta streaming — NID {STACK_LAYERS}-layer stack "
            f"({block.num_inputs} PIs, {block.num_gates} gates), "
            f"{low['delta']['num_instructions']} delta instructions",
            ["stream", "measured", "floor", "notes"],
            rows,
        ),
    )
    publish_json(
        "delta_streaming",
        {
            "fast_mode": fast_mode(),
            "sample_neurons": SAMPLE_NEURONS,
            "stack_layers": STACK_LAYERS,
            "low_entropy": low,
            "random": rand,
            "jsc": jsc,
            "random_slowdown": rand_slowdown,
        },
    )

    assert low["bit_identical"], "delta diverged from fused on NID"
    assert rand["bit_identical"], "delta diverged on random streams"
    assert jsc["bit_identical"], "delta diverged from fused on JSC"
    assert low["stream_session"]["stateful"]
    assert low["stream_session"]["verified"]
    assert low["delta"]["sparse_runs"] > 0, "sparse path never engaged"
    assert rand["delta"]["dense_fallback_runs"] > 0, (
        "random streams never triggered the dense fallback"
    )
    # Fast mode still checks every property but relaxes the wall-clock
    # bars: CI smoke runners have noisy, throttled cores.
    speedup_floor = 2.0 if fast_mode() else 3.0
    slowdown_ceiling = 1.5 if fast_mode() else 1.3
    assert low_speedup >= speedup_floor, (
        f"delta only {low_speedup:.2f}x faster on the 1-flip NID stream"
    )
    assert rand_slowdown <= slowdown_ceiling, (
        f"delta {rand_slowdown:.2f}x slower than fused on random streams"
    )
