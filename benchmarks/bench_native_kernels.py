"""Native multi-core kernel backends vs the single-thread fused engine.

The native engine executes the same packed fused tables through
pluggable backends — the always-available threaded word-shard backend
(pure numpy + stdlib threads over the rowwise kernel), plus optional
numba and CuPy backends when those accelerators are installed.  This
bench pins down the claims behind the ``native`` registration:

* >= 2x higher large-batch throughput than ``FusedEngine`` on machines
  with >= 4 cores, with the threaded backend alone (the ratio is
  archived in the JSON payload on every host, asserted only where the
  cores exist),
* bit-identical — outputs AND statistics — to the fused engine over all
  seven model workloads, every available backend, including through an
  ``.lpa`` artifact round-trip,
* graceful degradation: small batches fall through to the fused
  single-thread kernels, so the native engine is never a latency
  regression at one word.

Optional-backend numbers (numba/cupy) are archived whenever the
dependency is importable; the bench itself needs only numpy.
"""

import os
import statistics
import time

import numpy as np
from conftest import fast_mode, publish, publish_json

from repro.analysis import render_table
from repro.artifact import ExecutableArtifact
from repro.core import LPUConfig, PAPER_CONFIG, compile_ffcl
from repro.engine import SAMPLES_PER_WORD, Session
from repro.engine.native import FALLBACK_CHAIN, capabilities
from repro.lpu import evaluate_graph, random_stimulus
from repro.models import (
    jsc_l_workload,
    jsc_m_workload,
    layer_block,
    lenet5_workload,
    mlpmixer_b4_workload,
    mlpmixer_s4_workload,
    nid_workload,
    vgg16_paper_layers,
    vgg16_workload,
)

SAMPLE_NEURONS = 6
LARGE_ARRAY = 512 if fast_mode() else 2048
THROUGHPUT_RUNS = 5 if fast_mode() else 15
REPS = 5 if fast_mode() else 9

#: every repro.models workload generator (identity must hold on all 7).
MODEL_FACTORIES = [
    vgg16_workload,
    lenet5_workload,
    mlpmixer_s4_workload,
    mlpmixer_b4_workload,
    nid_workload,
    jsc_m_workload,
    jsc_l_workload,
]
PARITY_CONFIG = LPUConfig(num_lpvs=4, lpes_per_lpv=8)

_CACHE = {}


def _compiled_block():
    if "result" not in _CACHE:
        model = vgg16_workload()
        layer = max(
            vgg16_paper_layers(model), key=lambda l: l.num_neurons
        )
        block, _ = layer_block(layer, sample_neurons=SAMPLE_NEURONS, seed=0)
        _CACHE["layer"] = layer
        _CACHE["result"] = compile_ffcl(block, PAPER_CONFIG)
    return _CACHE["layer"], _CACHE["result"]


def _available_backends():
    report = capabilities()
    return [name for name in FALLBACK_CHAIN if report[name]]


def _native_session(program, backend, source=None):
    return Session(
        source if source is not None else program,
        engine="native",
        engine_options={"backend": backend, "min_shard_words": 16},
    )


def _median_ratio(slow, fast, stimulus, runs, reps):
    """Median slow/fast wall-time ratio over interleaved repetitions
    (interleaving cancels thermal / scheduler drift on noisy runners)."""
    slow.run(stimulus)
    fast.run(stimulus)
    ratios = []
    for _ in range(reps):
        start = time.perf_counter()
        for _ in range(runs):
            slow.run(stimulus)
        slow_s = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(runs):
            fast.run(stimulus)
        fast_s = time.perf_counter() - start
        ratios.append(slow_s / fast_s)
    return statistics.median(ratios), ratios


def _stats_tuple(result):
    return (
        result.macro_cycles,
        result.clock_cycles,
        result.compute_instructions_executed,
        result.switch_routes,
        result.peak_buffer_words,
        result.buffer_writes,
    )


def test_native_bit_identical_all_models(benchmark):
    """Outputs and statistics identical between fused and every
    available native backend — and through the .lpa artifact round-trip
    — for all 7 model workloads."""
    backends = _available_backends()
    checked = 0
    for factory in MODEL_FACTORIES:
        model = factory()
        layer = min(model.layers, key=lambda l: (l.fan_in, l.num_neurons))
        block, _ = layer_block(layer, sample_neurons=2, seed=0)
        result = compile_ffcl(block, PARITY_CONFIG)
        graph = result.program.graph
        artifact = ExecutableArtifact.from_bytes(
            result.to_artifact().to_bytes()
        )
        sessions = {"fused": Session(result.program, engine="fused")}
        for backend in backends:
            sessions[f"native/{backend}"] = _native_session(
                result.program, backend
            )
            sessions[f"native/{backend}/artifact"] = _native_session(
                result.program, backend, source=artifact
            )
        for array_size in (1, 64):
            stim = random_stimulus(graph, array_size=array_size, seed=7)
            reference = evaluate_graph(graph, stim)
            results = {
                name: session.run(stim)
                for name, session in sessions.items()
            }
            baseline = _stats_tuple(results["fused"])
            for name, run in results.items():
                for po, word in reference.items():
                    assert np.array_equal(run.outputs[po], word), (
                        factory.__name__, name, po,
                    )
                assert _stats_tuple(run) == baseline, (
                    factory.__name__, name,
                )
            checked += 1
    assert checked == 2 * len(MODEL_FACTORIES)
    _layer, result = _compiled_block()
    stim = random_stimulus(result.program.graph, array_size=64, seed=0)
    benchmark(_native_session(result.program, "threaded").run, stim)


def test_native_threaded_throughput(benchmark):
    layer, result = _compiled_block()
    graph = result.program.graph
    report = capabilities()
    cores = report["cpu_count"]

    stim_large = random_stimulus(graph, array_size=LARGE_ARRAY, seed=0)
    fused = Session(result.program, engine="fused")
    ratios = {}
    raw = {}
    for backend in _available_backends():
        if backend == "fused":
            continue  # the baseline itself
        speedup, samples = _median_ratio(
            fused,
            _native_session(result.program, backend),
            stim_large, THROUGHPUT_RUNS, REPS,
        )
        ratios[backend] = speedup
        raw[backend] = samples

    # One-word latency: the threaded backend falls through to the fused
    # kernels below min_shard_words, so it must not regress latency.
    stim_one = random_stimulus(graph, array_size=1, seed=0)
    latency_ratio, _ = _median_ratio(
        fused,
        _native_session(result.program, "threaded"),
        stim_one, 50 if fast_mode() else 200, REPS,
    )

    session = _native_session(result.program, "threaded")
    session.run(stim_large)
    benchmark(session.run, stim_large)

    threaded = ratios.get("threaded")
    rows = [
        [
            f"native/{backend} ({LARGE_ARRAY} words)",
            f"{speedup:.2f}x",
            ">= 2.00x on >= 4 cores" if backend == "threaded" else "-",
            f"fused -> native wall-time, median of "
            f"{REPS}x{THROUGHPUT_RUNS} runs",
        ]
        for backend, speedup in sorted(ratios.items())
    ]
    rows.append(
        [
            "native/threaded (1 word)", f"{latency_ratio:.2f}x",
            ">= 0.80x", "single-thread fall-through: no latency cliff",
        ]
    )
    publish(
        "native_kernels",
        render_table(
            f"Native kernel backends — VGG16 {layer.name} sampled block "
            f"on {cores} core(s), auto backend "
            f"{report['auto_backend']}",
            ["metric", "measured", "floor", "notes"],
            rows,
        ),
    )
    # The ratio is archived on EVERY host — single-core runners included
    # — so fleet dashboards can trend it; the 2x floor is asserted only
    # where the cores exist to meet it.
    publish_json(
        "native_kernels",
        {
            "workload": f"vgg16/{layer.name}",
            "sample_neurons": SAMPLE_NEURONS,
            "fast_mode": fast_mode(),
            "cpu_count": cores,
            "samples_per_word": SAMPLES_PER_WORD,
            "large_array_size": LARGE_ARRAY,
            "capabilities": report,
            "throughput_speedups": ratios,
            "throughput_ratios": raw,
            "threaded_speedup": threaded,
            "latency_ratio_one_word": latency_ratio,
            "floor_asserted": bool(cores >= 4),
        },
    )
    assert threaded is not None
    assert latency_ratio >= (0.5 if fast_mode() else 0.8), (
        f"threaded backend regressed one-word latency to "
        f"{latency_ratio:.2f}x of fused"
    )
    if cores >= 4 and os.environ.get("REPRO_BENCH_NO_FLOOR") != "1":
        floor = 1.3 if fast_mode() else 2.0
        assert threaded >= floor, (
            f"threaded backend only {threaded:.2f}x over fused at "
            f"{LARGE_ARRAY} words on {cores} cores (floor {floor}x)"
        )
