"""Fused trace execution: liveness-renamed generated kernels vs the
plain trace engine.

The fused engine stacks three optimizations on the trace lowering —
liveness-driven register reuse (working set = peak live values, not total
instructions), preallocated per-shape workspaces (zero steady-state
allocation), and per-program ``exec``-compiled flat kernels (no per-level
dispatch).  This bench pins down the three claims that made it the
serving default:

* >= 1.5x lower single-word latency than ``TraceEngine`` on the VGG16
  largest-layer workload (call-count-bound regime),
* >= 1.3x higher large-batch throughput (bandwidth-bound regime),
* >= 4x smaller peak value-table footprint (639 slots -> ~131 registers
  on VGG16),

while staying bit-identical — outputs AND statistics — to both the trace
and cycle-accurate engines over all seven model workloads, including
through an ``.lpa`` artifact round-trip of the renamed tables.
"""

import statistics
import time

import numpy as np
from conftest import fast_mode, publish, publish_json

from repro.analysis import render_table
from repro.artifact import ExecutableArtifact
from repro.core import (
    LPUConfig,
    PAPER_CONFIG,
    compile_ffcl,
    fuse_trace,
    lower_program,
)
from repro.engine import SAMPLES_PER_WORD, Session, available_engines
from repro.lpu import evaluate_graph, random_stimulus
from repro.models import (
    jsc_l_workload,
    jsc_m_workload,
    layer_block,
    lenet5_workload,
    mlpmixer_b4_workload,
    mlpmixer_s4_workload,
    nid_workload,
    vgg16_paper_layers,
    vgg16_workload,
)

SAMPLE_NEURONS = 6
LARGE_ARRAY = 128 if fast_mode() else 256
LATENCY_RUNS = 50 if fast_mode() else 200
THROUGHPUT_RUNS = 10 if fast_mode() else 30
REPS = 5 if fast_mode() else 9

#: every repro.models workload generator (identity must hold on all 7).
MODEL_FACTORIES = [
    vgg16_workload,
    lenet5_workload,
    mlpmixer_s4_workload,
    mlpmixer_b4_workload,
    nid_workload,
    jsc_m_workload,
    jsc_l_workload,
]
PARITY_CONFIG = LPUConfig(num_lpvs=4, lpes_per_lpv=8)

_CACHE = {}


def _compiled_block():
    if "result" not in _CACHE:
        model = vgg16_workload()
        layer = max(
            vgg16_paper_layers(model), key=lambda l: l.num_neurons
        )
        block, _ = layer_block(layer, sample_neurons=SAMPLE_NEURONS, seed=0)
        _CACHE["layer"] = layer
        _CACHE["result"] = compile_ffcl(block, PAPER_CONFIG)
    return _CACHE["layer"], _CACHE["result"]


def _median_ratio(slow, fast, stimulus, runs, reps):
    """Median slow/fast wall-time ratio over interleaved repetitions
    (interleaving cancels thermal / scheduler drift on noisy runners)."""
    slow.run(stimulus)
    fast.run(stimulus)
    ratios = []
    for _ in range(reps):
        start = time.perf_counter()
        for _ in range(runs):
            slow.run(stimulus)
        slow_s = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(runs):
            fast.run(stimulus)
        fast_s = time.perf_counter() - start
        ratios.append(slow_s / fast_s)
    return statistics.median(ratios), ratios


def _stats_tuple(result):
    return (
        result.macro_cycles,
        result.clock_cycles,
        result.compute_instructions_executed,
        result.switch_routes,
        result.peak_buffer_words,
        result.buffer_writes,
    )


def test_fused_bit_identical_all_models(benchmark):
    """Outputs and statistics identical across cycle/trace/fused — and
    through the .lpa artifact round-trip — for all 7 model workloads."""
    checked = 0
    for factory in MODEL_FACTORIES:
        model = factory()
        layer = min(model.layers, key=lambda l: (l.fan_in, l.num_neurons))
        block, _ = layer_block(layer, sample_neurons=2, seed=0)
        result = compile_ffcl(block, PARITY_CONFIG)
        graph = result.program.graph
        # The artifact path: serialize (renamed tables embedded), reload,
        # serve with the default engine — still zero divergence.
        artifact = ExecutableArtifact.from_bytes(
            result.to_artifact().to_bytes()
        )
        sessions = {
            name: Session(result.program, engine=name)
            for name in available_engines()
        }
        sessions["fused/artifact"] = artifact.session(engine="fused")
        for array_size in (1, 4):
            stim = random_stimulus(graph, array_size=array_size, seed=7)
            reference = evaluate_graph(graph, stim)
            results = {
                name: session.run(stim)
                for name, session in sessions.items()
            }
            baseline = _stats_tuple(results["cycle"])
            for name, run in results.items():
                for po, word in reference.items():
                    assert np.array_equal(run.outputs[po], word), (
                        factory.__name__, name, po,
                    )
                assert _stats_tuple(run) == baseline, (
                    factory.__name__, name,
                )
            checked += 1
    assert checked == 2 * len(MODEL_FACTORIES)
    _layer, result = _compiled_block()
    stim = random_stimulus(result.program.graph, array_size=1, seed=0)
    benchmark(Session(result.program, engine="fused").run, stim)


def test_trace_fusion_speedups(benchmark):
    layer, result = _compiled_block()
    graph = result.program.graph
    trace = lower_program(result.program)
    fused = fuse_trace(trace)

    # -- memory: peak value-table footprint -----------------------------
    memory_reduction = trace.num_slots / fused.num_regs

    # -- single-word latency (array_size=1) -----------------------------
    stim_one = random_stimulus(graph, array_size=1, seed=0)
    latency_speedup, latency_ratios = _median_ratio(
        Session(result.program, engine="trace"),
        Session(result.program, engine="fused"),
        stim_one, LATENCY_RUNS, REPS,
    )

    # -- large-batch throughput -----------------------------------------
    stim_large = random_stimulus(graph, array_size=LARGE_ARRAY, seed=0)
    throughput_speedup, throughput_ratios = _median_ratio(
        Session(result.program, engine="trace"),
        Session(result.program, engine="fused"),
        stim_large, THROUGHPUT_RUNS, REPS,
    )

    session = Session(result.program, engine="fused")
    session.run(stim_large)
    benchmark(session.run, stim_large)

    rows = [
        [
            "latency (1 word)", f"{latency_speedup:.2f}x",
            ">= 1.50x", "trace -> fused wall-time, median of "
            f"{REPS}x{LATENCY_RUNS} runs",
        ],
        [
            f"throughput ({LARGE_ARRAY} words)",
            f"{throughput_speedup:.2f}x", ">= 1.30x",
            f"median of {REPS}x{THROUGHPUT_RUNS} runs",
        ],
        [
            "peak value table", f"{memory_reduction:.2f}x", ">= 4.00x",
            f"{trace.num_slots} slots -> {fused.num_regs} registers",
        ],
    ]
    publish(
        "trace_fusion",
        render_table(
            f"Fused trace execution — VGG16 {layer.name} sampled block "
            f"({trace.compute_instructions} instructions, "
            f"{trace.num_levels} levels)",
            ["metric", "measured", "floor", "notes"],
            rows,
        ),
    )
    publish_json(
        "trace_fusion",
        {
            "workload": f"vgg16/{layer.name}",
            "sample_neurons": SAMPLE_NEURONS,
            "fast_mode": fast_mode(),
            "samples_per_word": SAMPLES_PER_WORD,
            "large_array_size": LARGE_ARRAY,
            "latency_speedup": latency_speedup,
            "latency_ratios": latency_ratios,
            "throughput_speedup": throughput_speedup,
            "throughput_ratios": throughput_ratios,
            "memory_reduction": memory_reduction,
            "trace_slots": trace.num_slots,
            "fused_registers": fused.num_regs,
            "fused_levels": fused.num_levels,
            "fused_instructions": sum(
                level.num_instructions for level in fused.levels
            ),
            "max_level_width": fused.max_level_width,
        },
    )
    # Fast mode still checks every property but relaxes the wall-clock
    # bars: CI smoke runners have noisy, throttled cores.
    latency_floor = 1.2 if fast_mode() else 1.5
    throughput_floor = 1.05 if fast_mode() else 1.3
    assert latency_speedup >= latency_floor, (
        f"fused only {latency_speedup:.2f}x faster at one word"
    )
    assert throughput_speedup >= throughput_floor, (
        f"fused only {throughput_speedup:.2f}x faster at {LARGE_ARRAY} words"
    )
    assert memory_reduction >= 4.0, (
        f"value table only {memory_reduction:.2f}x smaller "
        f"({trace.num_slots} -> {fused.num_regs})"
    )
