"""Serving throughput: the batched serving layer vs naive per-request runs.

The serving layer (:mod:`repro.serve`) exists to amortize the engine's
per-run overhead across concurrent requests: a :class:`BatchScheduler`
coalesces individual requests into micro-batches (each stimulus word is an
independent packed 64-sample lane, so coalescing is exact) and a
:class:`WorkerPool` shards the batches across engine instances.

This bench drives the shared serve-bench procedure
(:func:`repro.serve.run_serve_bench`) on the VGG16 largest-layer workload
with 8 concurrent open-loop clients and asserts the acceptance property:
**>= 2x requests/second over naive per-request Session.run on the trace
engine, with bit-identical outputs.**  The trace engine is pinned here
because the property measures the *serving layer's amortization of
per-run overhead* — a ratio against the engine it was calibrated on.
The fused engine (the serving default since PR 5) halves the naive
baseline itself, so its served-vs-naive ratio is structurally smaller;
a second pass asserts it still does not lose to naive and that serving
the fused default at least matches the trace-engine served path in
absolute requests/second (both within a 10% measurement-noise band).
"""

from conftest import fast_mode, publish, publish_json

from repro.analysis import render_table
from repro.core import PAPER_CONFIG, compile_ffcl
from repro.models import layer_block, vgg16_paper_layers, vgg16_workload
from repro.serve import run_serve_bench

SAMPLE_NEURONS = 6
ARRAY_SIZE = 2  # uint64 words per PI per request -> 128 samples/request
REQUESTS = 128 if fast_mode() else 512
CLIENTS = 8
WORKERS = 2
MAX_BATCH = 32
MAX_WAIT_MS = 1.0
MIN_SPEEDUP = 2.0

_CACHE = {}


def _compiled_block():
    if "result" not in _CACHE:
        model = vgg16_workload()
        layer = max(
            vgg16_paper_layers(model), key=lambda l: l.num_neurons
        )
        block, _ = layer_block(layer, sample_neurons=SAMPLE_NEURONS, seed=0)
        _CACHE["layer"] = layer
        _CACHE["result"] = compile_ffcl(block, PAPER_CONFIG)
    return _CACHE["layer"], _CACHE["result"]


def test_serve_throughput(benchmark):
    layer, result = _compiled_block()
    benchmark(lambda: None)

    report = run_serve_bench(
        result.program,
        engine="trace",  # the engine this ratio is calibrated on
        requests=REQUESTS,
        array_size=ARRAY_SIZE,
        clients=CLIENTS,
        num_workers=WORKERS,
        max_batch_size=MAX_BATCH,
        max_wait_ms=MAX_WAIT_MS,
        seed=0,
    )
    report["fast_mode"] = fast_mode()
    fused_report = run_serve_bench(
        result.program,
        engine="fused",  # the serving default
        requests=REQUESTS,
        array_size=ARRAY_SIZE,
        clients=CLIENTS,
        num_workers=WORKERS,
        max_batch_size=MAX_BATCH,
        max_wait_ms=MAX_WAIT_MS,
        seed=0,
    )
    report["fused"] = {
        "naive_requests_per_second":
            fused_report["naive"]["requests_per_second"],
        "served_requests_per_second":
            fused_report["served"]["requests_per_second"],
        "speedup": fused_report["speedup"],
        "bit_identical": fused_report["bit_identical"],
    }

    rows = [
        [
            "naive Session.run (trace)",
            f"{report['naive']['requests_per_second']:,.0f}",
            f"{report['naive']['seconds']:.3f}",
            "1.0x",
        ],
        [
            "repro.serve (trace)",
            f"{report['served']['requests_per_second']:,.0f}",
            f"{report['served']['seconds']:.3f}",
            f"{report['speedup']:.2f}x",
        ],
        [
            "naive Session.run (fused)",
            f"{fused_report['naive']['requests_per_second']:,.0f}",
            f"{fused_report['naive']['seconds']:.3f}",
            "-",
        ],
        [
            "repro.serve (fused)",
            f"{fused_report['served']['requests_per_second']:,.0f}",
            f"{fused_report['served']['seconds']:.3f}",
            f"{fused_report['speedup']:.2f}x",
        ],
    ]
    publish(
        "serve_throughput",
        render_table(
            f"Serving throughput — VGG16 {layer.name} sampled block, "
            f"{REQUESTS} requests x {report['samples_per_request']} samples, "
            f"{CLIENTS} clients, {WORKERS} workers, "
            f"batch<= {MAX_BATCH} (mean "
            f"{report['scheduler']['mean_batch']:.1f})",
            ["path", "requests/s", "seconds", "speedup"],
            rows,
        ),
    )
    publish_json("serve_throughput", report)

    assert report["bit_identical"], "served outputs diverged from naive runs"
    assert fused_report["bit_identical"], "fused serving diverged"
    # The acceptance property. Fast mode still checks correctness but
    # relaxes the bar: CI smoke runners have noisy, throttled cores.
    floor = 1.2 if fast_mode() else MIN_SPEEDUP
    assert report["speedup"] >= floor, (
        f"serving only {report['speedup']:.2f}x over naive per-request runs"
    )
    # The fused default must not lose to its own naive baseline, and
    # must at least match the trace served path in *absolute*
    # requests/second — both within a 10% measurement-noise band,
    # widened in fast mode like every other wall-clock floor here.
    band = 0.75 if fast_mode() else 0.9
    assert fused_report["speedup"] >= band, (
        f"fused serving {fused_report['speedup']:.2f}x vs naive fused runs"
    )
    assert (
        fused_report["served"]["requests_per_second"]
        >= band * report["served"]["requests_per_second"]
    ), "serving the fused default lost absolute throughput vs trace"


def test_serve_least_loaded_and_cache_reuse(benchmark):
    """A second bench pass: least-loaded placement must also hold the
    bit-identity invariant, and the program cache must serve the compile
    from its first pass."""
    _layer, result = _compiled_block()
    benchmark(lambda: None)

    report = run_serve_bench(
        result.program,
        requests=64 if fast_mode() else 128,
        array_size=ARRAY_SIZE,
        clients=CLIENTS,
        num_workers=WORKERS,
        max_batch_size=MAX_BATCH,
        max_wait_ms=MAX_WAIT_MS,
        placement="least_loaded",
        seed=1,
    )
    assert report["bit_identical"]
    assert report["cache"]["hits"] >= 1, report["cache"]
