"""Engine throughput: the vectorized trace engine vs the cycle-accurate
hardware model on the VGG16 largest-layer workload.

The cycle-accurate simulator is the ground truth but interprets every LPE
instruction per macro-cycle in Python; the trace engine lowers the compiled
program once into flat numpy tables and executes whole batches with
vectorized gathers.  Both produce bit-identical outputs and identical run
statistics (asserted here); the trace engine must deliver >= 10x the
samples/second on this workload — the property that makes it the serving
path while the cycle model remains the verification path.
"""

import time

import numpy as np
from conftest import fast_mode, publish, publish_json

from repro.analysis import render_table
from repro.core import PAPER_CONFIG, compile_ffcl
from repro.engine import SAMPLES_PER_WORD, Session, available_engines
from repro.lpu import evaluate_graph, random_stimulus
from repro.models import layer_block, vgg16_paper_layers, vgg16_workload

SAMPLE_NEURONS = 6
ARRAY_SIZE = 64  # uint64 words per PI per run -> 4096 samples/run
TRACE_RUNS = 5 if fast_mode() else 20
CYCLE_RUNS = 1 if fast_mode() else 2

_CACHE = {}


def _compiled_block():
    if "result" not in _CACHE:
        model = vgg16_workload()
        layer = max(
            vgg16_paper_layers(model), key=lambda l: l.num_neurons
        )
        block, _ = layer_block(layer, sample_neurons=SAMPLE_NEURONS, seed=0)
        _CACHE["layer"] = layer
        _CACHE["result"] = compile_ffcl(block, PAPER_CONFIG)
    return _CACHE["layer"], _CACHE["result"]


def _samples_per_second(session, stimulus, runs):
    session.run(stimulus)  # warm-up
    start = time.perf_counter()
    for _ in range(runs):
        session.run(stimulus)
    elapsed = time.perf_counter() - start
    return runs * SAMPLES_PER_WORD * ARRAY_SIZE / elapsed, elapsed / runs


def test_engine_throughput(benchmark):
    layer, result = _compiled_block()
    stimulus = random_stimulus(
        result.program.graph, array_size=ARRAY_SIZE, seed=0
    )
    reference = evaluate_graph(result.program.graph, stimulus)

    sessions = {
        name: Session(result.program, engine=name)
        for name in available_engines()
    }

    # Parity first: bit-identical outputs and identical statistics.
    results = {name: s.run(stimulus) for name, s in sessions.items()}
    for name, run in results.items():
        for po, word in reference.items():
            assert np.array_equal(run.outputs[po], word), (name, po)
    cycle, trace = results["cycle"], results["trace"]
    assert cycle.macro_cycles == trace.macro_cycles
    assert (
        cycle.compute_instructions_executed
        == trace.compute_instructions_executed
    )
    assert cycle.switch_routes == trace.switch_routes

    # Throughput: time repeated Session.run calls per engine.
    rates = {}
    rates["trace"], trace_latency = _samples_per_second(
        sessions["trace"], stimulus, TRACE_RUNS
    )
    rates["cycle"], cycle_latency = _samples_per_second(
        sessions["cycle"], stimulus, CYCLE_RUNS
    )
    benchmark(sessions["trace"].run, stimulus)

    speedup = rates["trace"] / rates["cycle"]
    rows = [
        [
            "cycle", f"{rates['cycle']:,.0f}", f"{cycle_latency * 1e3:.2f}",
            "1.0x",
        ],
        [
            "trace", f"{rates['trace']:,.0f}", f"{trace_latency * 1e3:.2f}",
            f"{speedup:.1f}x",
        ],
    ]
    publish(
        "engine_throughput",
        render_table(
            f"Engine throughput — VGG16 {layer.name} sampled block "
            f"({result.metrics.gates_balanced} gates, "
            f"{result.schedule.makespan} macro-cycles, "
            f"{SAMPLES_PER_WORD * ARRAY_SIZE} samples/run)",
            ["engine", "samples/s", "ms/run", "speedup"],
            rows,
        ),
    )
    publish_json(
        "engine_throughput",
        {
            "workload": f"vgg16/{layer.name}",
            "sample_neurons": SAMPLE_NEURONS,
            "array_size": ARRAY_SIZE,
            "samples_per_run": SAMPLES_PER_WORD * ARRAY_SIZE,
            "macro_cycles": result.schedule.makespan,
            "fast_mode": fast_mode(),
            "engines": {
                "cycle": {
                    "samples_per_second": rates["cycle"],
                    "ms_per_run": cycle_latency * 1e3,
                },
                "trace": {
                    "samples_per_second": rates["trace"],
                    "ms_per_run": trace_latency * 1e3,
                },
            },
            "speedup": speedup,
        },
    )
    # Fast mode still checks the property but relaxes the bar: CI smoke
    # runners have noisy, throttled cores and CYCLE_RUNS drops to 1.
    floor = 5.0 if fast_mode() else 10.0
    assert speedup >= floor, f"trace engine only {speedup:.1f}x faster"


def test_trace_throughput_scales_with_batch(benchmark):
    """Doubling the batch should cost the trace engine far less than 2x:
    per-run overhead is amortized, the vector work dominates."""
    _layer, result = _compiled_block()
    benchmark(lambda: None)
    graph = result.program.graph
    session = Session(result.program, engine="trace")

    def rate(array_size, runs=10):
        stim = random_stimulus(graph, array_size=array_size, seed=1)
        session.run(stim)
        start = time.perf_counter()
        for _ in range(runs):
            session.run(stim)
        return runs * SAMPLES_PER_WORD * array_size / (time.perf_counter() - start)

    small, large = rate(8), rate(512)
    assert large > 2.0 * small, (small, large)
