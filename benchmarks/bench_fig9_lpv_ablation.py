"""Fig. 9: inference time of VGG16 and LeNet-5 versus LPV count.

Paper findings: (1) inference time decreases with the LPV count and the
benefit saturates; (2) the "effective LPV threshold" against NullaDSP —
"we need at least 2 LPVs to achieve such performance for the case of
VGG16" (NullaDSP's reported VGG16 throughput is 0.33K FPS, Table II).
"""

from conftest import publish

from repro.analysis import crossover_point, render_series, render_table
from repro.baselines import PAPER_TABLE2_FPS
from repro.core import LPUConfig
from repro.models import (
    evaluate_model,
    lenet5_workload,
    vgg16_paper_layers,
    vgg16_workload,
)

LPV_COUNTS = [1, 2, 4, 8, 16, 32, 64]
SAMPLE_NEURONS = 6
_CACHE = {}


def _sweep():
    if "data" in _CACHE:
        return _CACHE["data"]
    vgg = vgg16_workload()
    vgg_layers = vgg16_paper_layers(vgg)
    lenet = lenet5_workload()
    vgg_times, lenet_times = [], []
    for n in LPV_COUNTS:
        cfg = LPUConfig(num_lpvs=n)
        vgg_times.append(
            evaluate_model(
                vgg, cfg, layers=vgg_layers, sample_neurons=SAMPLE_NEURONS
            ).latency_seconds
            * 1e3
        )
        lenet_times.append(
            evaluate_model(
                lenet, cfg, sample_neurons=SAMPLE_NEURONS
            ).latency_seconds
            * 1e3
        )
    _CACHE["data"] = (vgg_times, lenet_times)
    return _CACHE["data"]


def test_fig9_lpv_sweep(benchmark):
    vgg_times, lenet_times = _sweep()
    vgg = vgg16_workload()
    benchmark(
        evaluate_model,
        vgg,
        LPUConfig(num_lpvs=4),
        layers=vgg16_paper_layers(vgg),
        sample_neurons=SAMPLE_NEURONS,
    )

    fig = render_series(
        "Fig. 9 — inference time (ms) vs LPV count",
        "LPVs",
        LPV_COUNTS,
        {"VGG16": vgg_times, "LENET5": lenet_times},
    )

    # Effective LPV threshold vs NullaDSP's reported VGG16 throughput.
    nulladsp_fps = PAPER_TABLE2_FPS["VGG16"]["NullaDSP"]
    nulladsp_latency_ms = 1e3 / nulladsp_fps
    threshold, found = crossover_point(
        LPV_COUNTS, vgg_times, nulladsp_latency_ms
    )
    rows = [
        [n, vgg_times[i], lenet_times[i]]
        for i, n in enumerate(LPV_COUNTS)
    ]
    table = render_table(
        "Fig. 9 data — per-image latency (ms)",
        ["LPVs", "VGG16", "LENET5"],
        rows, precision=3,
    )
    summary = (
        f"effective LPV threshold vs NullaDSP (VGG16): {threshold:.0f} LPVs "
        f"(paper: at least 2)"
    )
    publish("fig9_lpv_ablation", "\n\n".join([fig, table, summary]))

    # Shape assertions: monotone improvement, saturation, threshold = 2.
    for series in (vgg_times, lenet_times):
        for earlier, later in zip(series, series[1:]):
            assert later <= earlier * 1.001
    # Saturation: the last doubling buys < 10% on VGG16.
    assert vgg_times[-1] > 0.9 * vgg_times[-2]
    assert found and threshold <= 2
