"""Tests for the serving layer (:mod:`repro.serve`).

The load-bearing invariants:

* **bit-identity** — any interleaving of requests through the
  :class:`BatchScheduler` (and the full :class:`InferenceServer` stack)
  yields outputs AND statistics bit-identical to a direct
  :meth:`Session.run` of each request (property-tested),
* **bounded waiting** — a request never waits beyond the max-wait policy
  for a batch that does not fill,
* **cache correctness** — the :class:`ProgramCache` keys on workload
  *content* (structurally identical graphs hit) and distinguishes
  configs/engines/options, with LRU eviction,
* **sharding correctness** — every placement policy and worker backend
  preserves results exactly.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LPUConfig,
    compile_ffcl,
    clear_lowering_cache,
    lower_program,
    lowering_cache_stats,
)
from repro.engine import Session
from repro.lpu import evaluate_graph, random_stimulus
from repro.netlist import random_dag
from repro.serve import (
    BatchScheduler,
    InferenceServer,
    ProgramCache,
    WorkerPool,
    graph_fingerprint,
    naive_serve,
    run_serve_bench,
    serve,
)

SMALL = LPUConfig(num_lpvs=4, lpes_per_lpv=8)
TINY = LPUConfig(num_lpvs=2, lpes_per_lpv=4)


@pytest.fixture(scope="module")
def compiled():
    g = random_dag(5, 40, 2, seed=3)
    return compile_ffcl(g, SMALL)


def _requests(graph, count, seed=0, max_words=3):
    return [
        random_stimulus(graph, array_size=1 + (seed + i) % max_words, seed=i)
        for i in range(count)
    ]


def assert_result_equal(served, direct):
    assert set(served.outputs) == set(direct.outputs)
    for name, word in direct.outputs.items():
        assert np.array_equal(served.outputs[name], word), name
        assert served.outputs[name].shape == word.shape, name
    assert served.macro_cycles == direct.macro_cycles
    assert served.clock_cycles == direct.clock_cycles
    assert (
        served.compute_instructions_executed
        == direct.compute_instructions_executed
    )
    assert served.switch_routes == direct.switch_routes
    assert served.peak_buffer_words == direct.peak_buffer_words
    assert served.buffer_writes == direct.buffer_writes


def test_serve_submodule_not_shadowed():
    """Regression: exporting the serve() function at the top level would
    shadow the `repro.serve` submodule attribute."""
    import importlib

    import repro

    module = importlib.import_module("repro.serve")
    assert repro.serve is module
    assert callable(repro.serve.serve)
    assert repro.serve.InferenceServer is InferenceServer


class TestGraphFingerprint:
    def test_content_identical_graphs_match(self):
        a = random_dag(5, 30, 2, seed=1)
        assert graph_fingerprint(a) == graph_fingerprint(a.copy())

    def test_different_structures_differ(self):
        a = random_dag(5, 30, 2, seed=1)
        b = random_dag(5, 30, 2, seed=2)
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_renaming_output_changes_fingerprint(self):
        a = random_dag(5, 30, 2, seed=1)
        b = a.copy()
        name, nid = b.outputs[0]
        b._outputs[0] = (name + "_renamed", nid)
        assert graph_fingerprint(a) != graph_fingerprint(b)


class TestProgramCache:
    def test_hit_on_structurally_identical_graph(self):
        cache = ProgramCache()
        g = random_dag(5, 30, 2, seed=4)
        first = cache.get_or_compile(g, TINY)
        second = cache.get_or_compile(g.copy(), TINY)
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_distinct_config_engine_options_miss(self):
        cache = ProgramCache()
        g = random_dag(5, 30, 2, seed=4)
        cache.get_or_compile(g, TINY)
        cache.get_or_compile(g, SMALL)
        cache.get_or_compile(g, TINY, engine="cycle")
        cache.get_or_compile(g, TINY, merge=False)
        assert cache.stats.misses == 4 and cache.stats.hits == 0
        assert len(cache) == 4

    def test_lru_eviction(self):
        cache = ProgramCache(capacity=2)
        graphs = [random_dag(4, 20, 1, seed=s) for s in range(3)]
        cache.get_or_compile(graphs[0], TINY)
        cache.get_or_compile(graphs[1], TINY)
        cache.get_or_compile(graphs[0], TINY)  # refresh 0: 1 becomes LRU
        cache.get_or_compile(graphs[2], TINY)  # evicts 1
        assert cache.stats.evictions == 1
        cache.get_or_compile(graphs[0], TINY)
        assert cache.stats.hits == 2  # 0 survived the eviction
        cache.get_or_compile(graphs[1], TINY)
        assert cache.stats.misses == 4  # 1 was evicted

    def test_trace_entry_carries_lowering(self, compiled):
        cache = ProgramCache()
        entry = cache.get_or_compile(compiled.program)
        assert entry.trace is not None
        assert entry.trace.program is compiled.program
        assert entry.compile_result is None  # program source: no compile
        cycle_entry = cache.get_or_compile(compiled.program, engine="cycle")
        assert cycle_entry.trace is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ProgramCache(capacity=0)

    def test_distinct_programs_of_same_graph_never_collide(self):
        """Regression: two differently-compiled programs over one graph
        and config must not share a cache entry — a collision silently
        serves the wrong program."""
        cache = ProgramCache()
        g = random_dag(6, 50, 3, seed=9)
        merged = compile_ffcl(g, SMALL, merge=True).program
        unmerged = compile_ffcl(g, SMALL, merge=False).program
        assert merged.schedule.makespan != unmerged.schedule.makespan
        first = cache.get_or_compile(merged)
        second = cache.get_or_compile(unmerged)
        assert first.program is merged
        assert second.program is unmerged
        # Re-resolving the same program object still hits.
        assert cache.get_or_compile(merged) is first
        assert cache.stats.hits == 1

    def test_concurrent_misses_converge_to_one_entry(self):
        """get_or_compile must not hold the cache lock across compilation,
        and racing misses on one key must share the winning entry."""
        cache = ProgramCache()
        g = random_dag(5, 40, 2, seed=10)
        entries = []

        def resolve():
            entries.append(cache.get_or_compile(g, TINY))

        threads = [threading.Thread(target=resolve) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == 1
        assert len({id(e.program) for e in entries}) == 1


class TestLoweringCache:
    def test_same_program_shares_lowering(self, compiled):
        clear_lowering_cache()
        first = lower_program(compiled.program)
        second = lower_program(compiled.program)
        assert first is second
        stats = lowering_cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] == 1

    def test_cache_false_forces_fresh(self, compiled):
        first = lower_program(compiled.program)
        fresh = lower_program(compiled.program, cache=False)
        assert fresh is not first

    def test_sessions_share_one_lowering(self, compiled):
        clear_lowering_cache()
        sessions = [
            Session(compiled.program, engine="trace") for _ in range(3)
        ]
        traces = {id(s.engine.trace) for s in sessions}
        assert len(traces) == 1
        assert lowering_cache_stats()["misses"] == 1

    def test_lowered_tables_frozen(self, compiled):
        trace = lower_program(compiled.program)
        level = trace.levels[0]
        with pytest.raises(ValueError):
            level.a_index[0] = 0


class TestBatchScheduler:
    def test_coalesces_to_one_run(self, compiled):
        session = Session(compiled.program)
        runs = []

        def dispatch(inputs):
            runs.append(inputs)
            return session.run(inputs)

        requests = _requests(compiled.program.graph, 6)
        with BatchScheduler(
            dispatch, max_batch_size=16, max_wait_ms=200.0
        ) as scheduler:
            futures = [scheduler.submit(r) for r in requests]
            results = [f.result(timeout=30) for f in futures]
        direct = [session.run(r) for r in requests]
        for served, ref in zip(results, direct):
            assert_result_equal(served, ref)
        # All six requests arrived well inside the 200ms window: they
        # must have shared engine runs (the first may dispatch alone).
        assert len(runs) < len(requests)
        assert scheduler.stats.requests == 6
        assert scheduler.stats.max_batch <= 16

    def test_max_batch_size_respected(self, compiled):
        session = Session(compiled.program)
        sizes = []

        def dispatch(inputs):
            sizes.append(next(iter(inputs.values())).size)
            return session.run(inputs)

        requests = [
            random_stimulus(compiled.program.graph, array_size=1, seed=i)
            for i in range(10)
        ]
        with BatchScheduler(
            dispatch, max_batch_size=3, max_wait_ms=100.0
        ) as scheduler:
            futures = [scheduler.submit(r) for r in requests]
            for f in futures:
                f.result(timeout=30)
        assert max(sizes) <= 3  # 1 word per request -> words == requests
        assert scheduler.stats.max_batch <= 3

    def test_partial_batch_dispatched_at_deadline(self, compiled):
        session = Session(compiled.program)
        scheduler = BatchScheduler(
            session.run, max_batch_size=64, max_wait_ms=100.0
        )
        try:
            stim = random_stimulus(compiled.program.graph, 1, seed=0)
            start = time.monotonic()
            result = scheduler.submit(stim).result(timeout=30)
            elapsed = time.monotonic() - start
            # Dispatched by deadline, not blocked on the batch filling.
            assert elapsed < 29
            assert_result_equal(result, session.run(stim))
            (size, _words, waited) = scheduler.stats.recent[0]
            assert size == 1
            assert waited >= 0.1  # honored the coalescing window
        finally:
            scheduler.close()

    def test_zero_wait_dispatches_immediately(self, compiled):
        session = Session(compiled.program)
        with BatchScheduler(
            session.run, max_batch_size=64, max_wait_ms=0.0
        ) as scheduler:
            stim = random_stimulus(compiled.program.graph, 1, seed=0)
            start = time.monotonic()
            scheduler.submit(stim).result(timeout=30)
            assert time.monotonic() - start < 5

    def test_mismatched_pi_shapes_rejected(self, compiled):
        with BatchScheduler(lambda inputs: None) as scheduler:
            stim = random_stimulus(compiled.program.graph, 2, seed=0)
            first = next(iter(stim))
            stim[first] = np.zeros(3, dtype=np.uint64)
            with pytest.raises(ValueError, match="share one shape"):
                scheduler.submit(stim)

    def test_missing_pi_rejected_at_submit(self, compiled):
        graph = compiled.program.graph
        names = frozenset(graph.input_name(nid) for nid in graph.inputs)
        with BatchScheduler(lambda inputs: None, pi_names=names) as sched:
            with pytest.raises(KeyError, match="missing value"):
                sched.submit({})

    def test_extra_pi_rejected_at_submit(self, compiled):
        """Regression: an unknown input key must fail its submitter, not
        poison the batch it would have been coalesced into."""
        graph = compiled.program.graph
        names = frozenset(graph.input_name(nid) for nid in graph.inputs)
        with BatchScheduler(lambda inputs: None, pi_names=names) as sched:
            stim = random_stimulus(graph, 1, seed=0)
            stim["not_a_pi"] = np.zeros(1, dtype=np.uint64)
            with pytest.raises(KeyError, match="unknown primary inputs"):
                sched.submit(stim)

    def test_mismatched_request_fails_alone(self, compiled):
        """Without pi_names, a request whose input names differ from its
        batch head fails by itself; batch-mates still succeed."""
        session = Session(compiled.program)
        graph = compiled.program.graph
        good = random_stimulus(graph, 1, seed=0)
        bad = dict(good)
        bad["not_a_pi"] = np.zeros(1, dtype=np.uint64)
        with BatchScheduler(
            session.run, max_batch_size=4, max_wait_ms=200.0
        ) as scheduler:
            futures = [
                scheduler.submit(good),
                scheduler.submit(bad),
                scheduler.submit(good),
            ]
            assert_result_equal(
                futures[0].result(timeout=30), session.run(good)
            )
            assert_result_equal(
                futures[2].result(timeout=30), session.run(good)
            )
            with pytest.raises(KeyError, match="do not match its batch"):
                futures[1].result(timeout=30)

    def test_dispatch_error_fans_out(self, compiled):
        def dispatch(inputs):
            raise RuntimeError("engine exploded")

        with BatchScheduler(dispatch, max_wait_ms=0.0) as scheduler:
            stim = random_stimulus(compiled.program.graph, 1, seed=0)
            futures = [scheduler.submit(stim) for _ in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="engine exploded"):
                    future.result(timeout=30)

    def test_submit_after_close_rejected(self, compiled):
        scheduler = BatchScheduler(lambda inputs: None)
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit(
                random_stimulus(compiled.program.graph, 1, seed=0)
            )

    def test_close_drains_queued_requests(self, compiled):
        session = Session(compiled.program)
        scheduler = BatchScheduler(
            session.run, max_batch_size=4, max_wait_ms=5000.0
        )
        futures = [
            scheduler.submit(r)
            for r in _requests(compiled.program.graph, 6)
        ]
        scheduler.close()  # drain must beat the 5s deadline
        for future in futures:
            assert future.result(timeout=1) is not None

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchScheduler(lambda inputs: None, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(lambda inputs: None, max_wait_ms=-1.0)


#: Module-cached program for the hypothesis properties (fixtures don't
#: mix with @given; lowering is shared through the lowering cache).
_PROPERTY_CACHE = {}


def _property_program():
    if "program" not in _PROPERTY_CACHE:
        g = random_dag(5, 40, 2, seed=3)
        _PROPERTY_CACHE["program"] = compile_ffcl(g, SMALL).program
    return _PROPERTY_CACHE["program"]


@settings(max_examples=15, deadline=None)
@given(
    count=st.integers(1, 10),
    max_batch=st.integers(1, 8),
    max_wait_ms=st.sampled_from([0.0, 1.0, 20.0]),
    seed=st.integers(0, 100),
)
def test_property_scheduler_bit_identical(count, max_batch, max_wait_ms, seed):
    """ANY interleaving of requests through the scheduler — any request
    count, batch bound, and wait policy — is bit-identical to direct
    per-request Session.run, statistics included, in request order."""
    program = _property_program()
    session = Session(program)
    requests = _requests(program.graph, count, seed=seed)
    with BatchScheduler(
        session.run, max_batch_size=max_batch, max_wait_ms=max_wait_ms
    ) as scheduler:
        futures = [scheduler.submit(r) for r in requests]
        results = [f.result(timeout=60) for f in futures]
    direct = Session(program)
    for served, request in zip(results, requests):
        assert_result_equal(served, direct.run(request))
    for size, _words, waited in scheduler.stats.recent:
        assert size <= max_batch
        if size < max_batch:
            # A non-full batch must have been released by the deadline
            # (generous slack: CI schedulers can stall threads).
            assert waited <= max_wait_ms / 1e3 + 10.0


class TestWorkerPool:
    def test_round_robin_spreads_batches(self, compiled):
        with WorkerPool(
            compiled.program, num_workers=3, placement="round_robin"
        ) as pool:
            stim = random_stimulus(compiled.program.graph, 1, seed=0)
            futures = [pool.submit(stim) for _ in range(9)]
            for future in futures:
                future.result(timeout=30)
            assert pool.stats()["dispatched"] == [3, 3, 3]

    def test_least_loaded_prefers_idle_workers(self, compiled):
        with WorkerPool(
            compiled.program, num_workers=2, placement="least_loaded"
        ) as pool:
            stim = random_stimulus(compiled.program.graph, 1, seed=0)
            futures = [pool.submit(stim) for _ in range(8)]
            for future in futures:
                future.result(timeout=30)
            dispatched = pool.stats()["dispatched"]
            assert sum(dispatched) == 8
            assert all(count > 0 for count in dispatched)
            assert pool.stats()["pending_words"] == [0, 0]

    def test_results_bit_identical(self, compiled):
        session = Session(compiled.program)
        requests = _requests(compiled.program.graph, 6)
        with WorkerPool(compiled.program, num_workers=2) as pool:
            results = [pool.run(r) for r in requests]
        for served, request in zip(results, requests):
            assert_result_equal(served, session.run(request))

    def test_worker_error_propagates(self, compiled):
        with WorkerPool(compiled.program, num_workers=1) as pool:
            future = pool.submit({})
            with pytest.raises(KeyError):
                future.result(timeout=30)

    def test_submit_after_close_rejected(self, compiled):
        pool = WorkerPool(compiled.program, num_workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(random_stimulus(compiled.program.graph, 1, seed=0))

    def test_validation(self, compiled):
        with pytest.raises(ValueError, match="num_workers"):
            WorkerPool(compiled.program, num_workers=0)
        with pytest.raises(ValueError, match="placement"):
            WorkerPool(compiled.program, placement="warp")
        with pytest.raises(ValueError, match="backend"):
            WorkerPool(compiled.program, backend="gpu")

    def test_workers_share_one_lowering(self, compiled):
        clear_lowering_cache()
        with WorkerPool(compiled.program, num_workers=4):
            assert lowering_cache_stats()["misses"] == 1

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="process backend needs fork",
    )
    def test_process_backend_bit_identical(self, compiled):
        session = Session(compiled.program)
        requests = _requests(compiled.program.graph, 4)
        with WorkerPool(
            compiled.program, num_workers=2, backend="process"
        ) as pool:
            results = [pool.submit(r) for r in requests]
            for served, request in zip(results, requests):
                assert_result_equal(
                    served.result(timeout=120), session.run(request)
                )


class TestInferenceServer:
    def test_end_to_end_bit_identical_in_order(self, compiled):
        requests = _requests(compiled.program.graph, 24)
        direct = naive_serve(compiled.program, requests)
        served = serve(
            compiled.program,
            requests,
            num_workers=2,
            max_batch_size=6,
            max_wait_ms=5.0,
        )
        assert len(served) == len(direct)
        for got, ref in zip(served, direct):
            assert_result_equal(got, ref)

    def test_concurrent_clients(self, compiled):
        requests = _requests(compiled.program.graph, 32)
        session = Session(compiled.program)
        with InferenceServer(
            compiled.program, num_workers=2, max_batch_size=8
        ) as server:
            with ThreadPoolExecutor(8) as executor:
                results = list(executor.map(server.infer, requests))
        for got, request in zip(results, requests):
            assert_result_equal(got, session.run(request))

    def test_stats_shape(self, compiled):
        with InferenceServer(compiled.program) as server:
            server.infer(random_stimulus(compiled.program.graph, 1, seed=0))
            stats = server.stats()
        assert set(stats) == {"cache", "scheduler", "pool"}
        assert stats["scheduler"]["requests"] == 1
        assert stats["pool"]["num_workers"] == 1

    def test_compiles_from_graph_through_cache(self):
        g = random_dag(5, 30, 2, seed=8)
        cache = ProgramCache()
        with InferenceServer(g, TINY, cache=cache) as server:
            result = server.infer(random_stimulus(g, 2, seed=0))
        reference = evaluate_graph(g, random_stimulus(g, 2, seed=0))
        for name, word in reference.items():
            assert np.array_equal(result.outputs[name], word)
        assert cache.stats.misses == 1
        # A second server over the same workload hits the cache.
        with InferenceServer(g.copy(), TINY, cache=cache):
            pass
        assert cache.stats.hits >= 1

    def test_close_is_idempotent(self, compiled):
        server = InferenceServer(compiled.program)
        server.close()
        server.close()


class TestServeBench:
    def test_report_shape_and_bit_identity(self, compiled):
        report = run_serve_bench(
            compiled.program,
            requests=16,
            array_size=1,
            clients=4,
            num_workers=2,
            max_batch_size=8,
            max_wait_ms=1.0,
            cache=ProgramCache(),
        )
        assert report["bit_identical"] is True
        assert report["requests"] == 16
        assert report["scheduler"]["requests"] >= 16
        assert report["naive"]["requests_per_second"] > 0
        assert report["served"]["requests_per_second"] > 0
        assert sum(report["pool"]["dispatched"]) >= 1

    def test_validation(self, compiled):
        with pytest.raises(ValueError):
            run_serve_bench(compiled.program, requests=0)
        with pytest.raises(ValueError):
            run_serve_bench(compiled.program, clients=0)


class TestRequestDeadlines:
    """Deadline-expiry boundaries at the scheduler surface (the full
    fault-tolerance matrix lives in test_faults.py)."""

    def test_deadline_on_the_boundary_of_the_wait(self, compiled):
        from repro.serve import ServeConfig
        from repro.serve.scheduler import DeadlineExceeded

        session = Session(compiled.program)
        # deadline > fill-wait: the batch dispatches at max_wait and
        # the request completes well inside its budget.
        with InferenceServer(
            compiled.program,
            serving=ServeConfig(max_batch_size=8, max_wait_ms=5.0),
        ) as server:
            request = _requests(compiled.program.graph, 1)[0]
            future = server.submit(request, deadline_ms=5_000.0)
            assert_result_equal(
                future.result(timeout=30), session.run(request)
            )
        # deadline < fill-wait: shed typed within ~one scheduler tick,
        # nowhere near the 10-second fill window.
        with InferenceServer(
            compiled.program,
            serving=ServeConfig(max_batch_size=8, max_wait_ms=10_000.0),
        ) as server:
            request = _requests(compiled.program.graph, 1)[0]
            started = time.monotonic()
            doomed = server.submit(request, deadline_ms=20.0)
            with pytest.raises(DeadlineExceeded) as excinfo:
                doomed.result(timeout=30)
            assert excinfo.value.deadline_ms == 20.0
            assert excinfo.value.waited_ms >= 19.0
            assert (time.monotonic() - started) < 5.0
            assert server.stats()["scheduler"]["expired"] == 1

    def test_zero_or_negative_deadline_rejected(self, compiled):
        with InferenceServer(compiled.program) as server:
            request = _requests(compiled.program.graph, 1)[0]
            for bad in (0.0, -3.5):
                with pytest.raises(ValueError, match="deadline"):
                    server.submit(request, deadline_ms=bad)

    def test_default_deadline_from_config(self, compiled):
        from repro.serve import ServeConfig

        with InferenceServer(
            compiled.program,
            serving=ServeConfig(default_deadline_ms=60_000.0),
        ) as server:
            assert server.effective_deadline_ms() == 60_000.0
            assert server.effective_deadline_ms(100.0) == 100.0
