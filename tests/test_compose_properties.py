"""Property tests for graph composition (hypothesis).

The v2 bundle format leans on :func:`compose_serial` for both its
functional reference and its manifest validation, so the composition
laws get property coverage of their own:

* **dangling wiring keys raise** — a wiring naming a PI the second
  graph doesn't have, or a PO the first graph doesn't drive, is a
  ``KeyError`` (never a silently dropped edge),
* **identity wiring is complete** — the default wiring covers exactly
  the name-intersection of first-POs and second-PIs,
* **composition is evaluation** — the composed graph computes the same
  function as running the two graphs back to back,
* **merge_parallel collisions raise** — duplicate PO names are a
  ``ValueError``; shared PIs become one input that feeds every member.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.lpu import evaluate_graph, random_stimulus
from repro.netlist import LogicGraph, cells, random_dag
from repro.netlist.compose import compose_serial, merge_parallel

_BINARY_OPS = sorted(cells.MISO_OPS)


@st.composite
def gate_graph(draw, input_names, po_prefix):
    """A random well-formed graph over fixed PI names with ``po_prefix``
    POs — unlike :func:`random_dag` the interface names are ours, which
    is what wiring/collision properties need."""
    graph = LogicGraph(f"{po_prefix}graph")
    nodes = [graph.add_input(name) for name in input_names]
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        op = draw(st.sampled_from(_BINARY_OPS))
        a = draw(st.sampled_from(nodes))
        b = draw(st.sampled_from(nodes))
        nodes.append(graph.add_gate(op, a, b))
    for i in range(draw(st.integers(min_value=1, max_value=3))):
        graph.set_output(f"{po_prefix}{i}", draw(st.sampled_from(nodes)))
    return graph


def _pi_names(graph):
    return {graph.input_name(nid) for nid in graph.inputs}


def _po_names(graph):
    return {name for name, _ in graph.outputs}


@settings(max_examples=25, deadline=None)
@given(
    seed1=st.integers(min_value=0, max_value=2**16),
    seed2=st.integers(min_value=0, max_value=2**16),
    width=st.integers(min_value=2, max_value=5),
    gates=st.integers(min_value=4, max_value=30),
    stim_seed=st.integers(min_value=0, max_value=2**16),
)
def test_explicit_wiring_composes_to_two_step_evaluation(
    seed1, seed2, width, gates, stim_seed
):
    first = random_dag(width, gates, width, seed=seed1)
    second = random_dag(width, gates, width, seed=seed2)
    # Small graphs may prune interface names; wire what both sides have.
    wiring = {
        f"x{j}": f"y{j}"
        for j in range(width)
        if f"x{j}" in _pi_names(second) and f"y{j}" in _po_names(first)
    }
    composed = compose_serial(first, second, wiring)

    # Wired PIs disappear from the composed interface; the rest stay.
    unwired = _pi_names(second) - set(wiring)
    assert _pi_names(composed) <= _pi_names(first) | unwired
    assert _po_names(composed) == _po_names(second)

    stim = random_stimulus(composed, array_size=2, seed=stim_seed)
    full = dict(stim)
    for name in _pi_names(first) | unwired:
        if name not in full:
            full[name] = np.zeros(2, dtype=np.uint64)
    mid = evaluate_graph(first, {n: full[n] for n in _pi_names(first)})
    second_stim = {n: full[n] for n in unwired}
    second_stim.update({pi: mid[po] for pi, po in wiring.items()})
    two_step = evaluate_graph(second, second_stim)
    fused = evaluate_graph(composed, stim)
    for name in _po_names(second):
        assert np.array_equal(fused[name], two_step[name]), name


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    width=st.integers(min_value=2, max_value=5),
    second=st.data(),
    stim_seed=st.integers(min_value=0, max_value=2**16),
)
def test_identity_wiring_covers_exactly_the_name_intersection(
    seed, width, second, stim_seed
):
    first = random_dag(width, 12, width, seed=seed)  # POs y0..y{width-1}
    # Second stage reads a mix of names first drives (y*) and names it
    # doesn't (u*): identity wiring must pick up exactly the former.
    pi_names = [f"y{j}" for j in range(width)] + ["u0", "u1"]
    graph2 = second.draw(gate_graph(input_names=pi_names, po_prefix="z"))
    composed = compose_serial(first, graph2)

    wired = _pi_names(graph2) & _po_names(first)
    external = _pi_names(graph2) - wired
    assert _pi_names(composed) <= _pi_names(first) | external
    assert external <= _pi_names(composed) | _pi_names(first)

    stim = random_stimulus(composed, array_size=2, seed=stim_seed)
    full = dict(stim)
    # Pruned-away first-stage PIs still need values for the reference
    # two-step run.
    for name in _pi_names(first) | external:
        if name not in full:
            full[name] = np.zeros(2, dtype=np.uint64)
    mid = evaluate_graph(first, {n: full[n] for n in _pi_names(first)})
    second_stim = {n: full[n] for n in external}
    second_stim.update({n: mid[n] for n in wired})
    two_step = evaluate_graph(graph2, second_stim)
    fused = evaluate_graph(composed, stim)
    for name in _po_names(graph2):
        assert np.array_equal(fused[name], two_step[name]), name


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    bogus=st.text(
        alphabet="abcdef", min_size=1, max_size=6
    ).filter(lambda s: not s.startswith(("x", "y"))),
)
def test_dangling_wiring_keys_raise(seed, bogus):
    first = random_dag(3, 10, 3, seed=seed)
    second = random_dag(3, 10, 3, seed=seed + 1)
    try:
        compose_serial(first, second, {bogus: "y0"})
        raise AssertionError("unknown second-graph PI was accepted")
    except KeyError as exc:
        assert "no input" in str(exc)
    real_pi = sorted(_pi_names(second))[0]
    try:
        compose_serial(first, second, {real_pi: bogus})
        raise AssertionError("dangling first-graph PO was accepted")
    except KeyError as exc:
        assert "no output" in str(exc)


@settings(max_examples=25, deadline=None)
@given(data=st.data(), stim_seed=st.integers(min_value=0, max_value=2**16))
def test_merge_parallel_evaluates_every_member(data, stim_seed):
    shared = ["a", "b", "c"]
    members = [
        data.draw(gate_graph(input_names=shared, po_prefix=prefix))
        for prefix in ("p", "q", "r")
    ]
    merged = merge_parallel(members, name="panel")
    assert _pi_names(merged) <= set(shared)
    assert _po_names(merged) == set().union(
        *(_po_names(g) for g in members)
    )

    stim = {
        name: random_stimulus(merged, array_size=2, seed=stim_seed).get(
            name, np.zeros(2, dtype=np.uint64)
        )
        for name in shared
    }
    fused = evaluate_graph(merged, {n: stim[n] for n in _pi_names(merged)})
    for member in members:
        alone = evaluate_graph(
            member, {n: stim[n] for n in _pi_names(member)}
        )
        for name in _po_names(member):
            assert np.array_equal(fused[name], alone[name]), name


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_merge_parallel_po_collision_raises(data):
    shared = ["a", "b"]
    graph = data.draw(gate_graph(input_names=shared, po_prefix="p"))
    try:
        merge_parallel([graph, graph], name="collision")
        raise AssertionError("duplicate PO names were accepted")
    except ValueError as exc:
        assert "duplicate output" in str(exc)
