"""Fast, test-suite-resident versions of the experiment shape checks.

The benches under benchmarks/ regenerate the paper's tables and figures at
full scale; these tests assert the same qualitative findings at reduced
scale so `pytest tests/` alone certifies the reproduction's headline
claims.
"""

import numpy as np
import pytest

from repro.analysis.gantt import render_gantt, utilization
from repro.baselines import (
    LogicNetsModel,
    LPUResourceModel,
    PAPER_TABLE1,
    PAPER_TABLE2_FPS,
)
from repro.core import LPUConfig, PAPER_CONFIG, build_schedule, merge_partition, partition
from repro.models import (
    evaluate_model,
    jsc_m_workload,
    nid_workload,
    vgg16_paper_layers,
    vgg16_workload,
)
from repro.netlist import random_dag
from repro.synth import preprocess

SAMPLE = 4  # neurons per layer: small, keeps this module quick


@pytest.fixture(scope="module")
def vgg_eval():
    vgg = vgg16_workload()
    layers = vgg16_paper_layers(vgg)
    merged = evaluate_model(vgg, PAPER_CONFIG, merge=True,
                            sample_neurons=SAMPLE, layers=layers)
    unmerged = evaluate_model(vgg, PAPER_CONFIG, merge=False,
                              sample_neurons=SAMPLE, layers=layers)
    return vgg, merged, unmerged


class TestTable1Shape:
    def test_resource_model_matches_paper(self):
        est = LPUResourceModel().estimate(PAPER_CONFIG)
        assert est.flip_flops == pytest.approx(PAPER_TABLE1["FF"], rel=0.1)
        assert est.luts == pytest.approx(PAPER_TABLE1["LUT"], rel=0.1)
        assert est.bram_kb == pytest.approx(PAPER_TABLE1["BRAM_Kb"], rel=0.1)


class TestTable2Shape:
    def test_lpu_beats_reported_baselines_on_vgg16(self, vgg_eval):
        _vgg, merged, _ = vgg_eval
        reported = PAPER_TABLE2_FPS["VGG16"]
        assert merged.fps > reported["MAC"]
        assert merged.fps > reported["NullaDSP"]
        assert merged.fps > reported["XNOR"]


class TestTable3Shape:
    def test_logicnets_beats_lpu_on_tiny_models(self):
        ln = LogicNetsModel()
        for model in (nid_workload(), jsc_m_workload()):
            lpu = evaluate_model(model, PAPER_CONFIG, sample_neurons=SAMPLE)
            assert ln.fps(model) > lpu.fps

    def test_nid_within_order_of_paper_lpu(self):
        lpu = evaluate_model(nid_workload(), PAPER_CONFIG, sample_neurons=SAMPLE)
        assert 0.05 < lpu.fps / 8.39e6 < 20.0


class TestFig7and8Shape:
    def test_merging_reduces_cycles_and_mfgs_every_layer(self, vgg_eval):
        _vgg, merged, unmerged = vgg_eval
        for em, eu in zip(merged.layers, unmerged.layers):
            assert em.makespan_full <= eu.makespan_full
            assert em.mfgs_after_merge <= eu.mfgs_after_merge

    def test_cycles_track_mfg_count(self, vgg_eval):
        _vgg, merged, unmerged = vgg_eval
        cycles = [e.makespan_full for e in merged.layers + unmerged.layers]
        mfgs = [e.mfgs_full for e in merged.layers + unmerged.layers]
        corr = float(np.corrcoef(cycles, mfgs)[0, 1])
        assert corr > 0.8

    def test_vgg16_merging_multi_x(self, vgg_eval):
        _vgg, merged, unmerged = vgg_eval
        assert merged.fps / unmerged.fps > 3.0
        assert unmerged.total_mfgs / merged.total_mfgs > 3.0


class TestFig9Shape:
    def test_latency_monotone_and_saturating(self):
        vgg = vgg16_workload()
        layers = vgg16_paper_layers(vgg)
        times = []
        for n in (1, 2, 4, 16, 32):
            ev = evaluate_model(vgg, LPUConfig(num_lpvs=n),
                                sample_neurons=SAMPLE, layers=layers)
            times.append(ev.latency_seconds)
        for earlier, later in zip(times, times[1:]):
            assert later <= earlier * 1.001
        assert times[-1] > 0.9 * times[-2]  # saturation

    def test_effective_lpv_threshold_at_most_two(self):
        vgg = vgg16_workload()
        layers = vgg16_paper_layers(vgg)
        nulladsp_latency = 1.0 / PAPER_TABLE2_FPS["VGG16"]["NullaDSP"]
        ev2 = evaluate_model(vgg, LPUConfig(num_lpvs=2),
                             sample_neurons=SAMPLE, layers=layers)
        assert ev2.latency_seconds <= nulladsp_latency


class TestGantt:
    def make_schedule(self):
        g = preprocess(random_dag(6, 60, 3, seed=2)).graph
        part = merge_partition(partition(g, 4))
        return build_schedule(part, LPUConfig(num_lpvs=4, lpes_per_lpv=4))

    def test_render_contains_all_lpvs(self):
        sched = self.make_schedule()
        text = render_gantt(sched)
        for lpv in range(4):
            assert f"LPV{lpv:>2}" in text
        assert "legend:" in text

    def test_utilization_in_unit_interval(self):
        sched = self.make_schedule()
        u = utilization(sched)
        assert 0.0 < u <= 1.0

    def test_pipelined_beats_sequential_utilization(self):
        g = preprocess(random_dag(6, 80, 3, seed=4)).graph
        cfg = LPUConfig(num_lpvs=4, lpes_per_lpv=4)
        pipe = build_schedule(merge_partition(partition(g, 4)), cfg)
        seq = build_schedule(
            merge_partition(partition(g, 4)), cfg, policy="sequential"
        )
        assert utilization(pipe) >= utilization(seq)
