"""Tests for the native multi-core engine over the packed fused tables.

The load-bearing properties:

* every native backend is bit-identical — outputs AND statistics — to
  the fused engine for every model workload, batch shape, and thread
  count, directly and through the ``.lpa`` artifact round-trip,
* the packed opcode stream (hazard MOVs included) executes under
  strictly sequential semantics to the same results as the per-level
  fused kernels — the contract the numba and CUDA kernels transliterate,
* backend selection is deterministic (``cupy -> numba -> threaded ->
  fused``), explicit unavailable backends fail loudly, and the options
  plumb through ``Session``/``ServeConfig``/``WorkerPool``,
* everything here passes in a pure-numpy environment — numba/cupy cases
  skip gracefully when the optional dependency is missing.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifact import ExecutableArtifact
from repro.core import LPUConfig, compile_ffcl, fuse_trace, lower_program
from repro.engine import (
    NativeEngine,
    Session,
    create_engine,
    native_capabilities,
)
from repro.engine.native import (
    FALLBACK_CHAIN,
    OP_MOV,
    _backend_available,
    capabilities,
    execute_stream,
    pack_stream,
)
from repro.lpu import cross_check, evaluate_graph, random_stimulus
from repro.models import (
    jsc_l_workload,
    jsc_m_workload,
    layer_block,
    lenet5_workload,
    mlpmixer_b4_workload,
    mlpmixer_s4_workload,
    nid_workload,
    vgg16_workload,
)
from repro.netlist import random_dag
from repro.serve import ServeConfig, serve
from repro.serve.pool import WorkerPool

SMALL = LPUConfig(num_lpvs=4, lpes_per_lpv=8)
TINY = LPUConfig(num_lpvs=2, lpes_per_lpv=4)

MODEL_FACTORIES = [
    vgg16_workload,
    lenet5_workload,
    mlpmixer_s4_workload,
    mlpmixer_b4_workload,
    nid_workload,
    jsc_m_workload,
    jsc_l_workload,
]

#: every backend, optional ones marked for graceful skip.
ALL_BACKENDS = [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            not _backend_available(name),
            reason=f"native backend {name!r} unavailable on this host",
        ),
    )
    for name in FALLBACK_CHAIN
]


def _compile_block(factory):
    model = factory()
    layer = min(model.layers, key=lambda l: (l.fan_in, l.num_neurons))
    block, _ = layer_block(layer, sample_neurons=2, seed=0)
    return compile_ffcl(block, SMALL)


def _assert_same_result(native, fused, context):
    for name, word in fused.outputs.items():
        assert np.array_equal(native.outputs[name], word), (context, name)
    assert native.macro_cycles == fused.macro_cycles, context
    assert native.clock_cycles == fused.clock_cycles, context
    assert (
        native.compute_instructions_executed
        == fused.compute_instructions_executed
    ), context
    assert native.switch_routes == fused.switch_routes, context
    assert native.peak_buffer_words == fused.peak_buffer_words, context
    assert native.buffer_writes == fused.buffer_writes, context


# ----------------------------------------------------------------------
class TestCapabilities:
    def test_report_shape(self):
        report = capabilities()
        assert report["fallback_chain"] == list(FALLBACK_CHAIN)
        assert report["threaded"] is True
        assert report["fused"] is True
        assert report["cpu_count"] >= 1
        assert report["auto_backend"] in FALLBACK_CHAIN
        for optional in ("numba", "cupy"):
            if not report[optional]:
                assert report[f"{optional}_error"]
        assert native_capabilities() == report

    def test_auto_picks_first_available(self):
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, TINY)
        engine = NativeEngine(res.program)
        assert engine.backend == capabilities()["auto_backend"]
        chain = list(FALLBACK_CHAIN)
        for earlier in chain[: chain.index(engine.backend)]:
            assert not _backend_available(earlier)

    def test_unknown_backend_rejected(self):
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, TINY)
        with pytest.raises(ValueError, match="unknown native backend"):
            NativeEngine(res.program, backend="simd")

    def test_unavailable_backend_raises_with_reason(self):
        missing = [
            name for name in ("cupy", "numba")
            if not _backend_available(name)
        ]
        if not missing:
            pytest.skip("all optional backends available on this host")
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, TINY)
        with pytest.raises(ValueError, match="unavailable"):
            NativeEngine(res.program, backend=missing[0])

    def test_bad_thread_count_rejected(self):
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, TINY)
        with pytest.raises(ValueError, match="threads"):
            NativeEngine(res.program, threads=-1)

    def test_backend_stats_report(self):
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, TINY)
        engine = NativeEngine(
            res.program, backend="threaded", threads=3,
            min_shard_words=2, rowwise_min_words=8,
        )
        stats = engine.backend_stats()
        assert stats["backend"] == "threaded"
        assert stats["threads"] == 3
        assert stats["min_shard_words"] == 2
        assert stats["rowwise_min_words"] == 8
        assert stats["stream_instructions"] >= sum(
            lv.num_instructions for lv in engine.fused.levels
        )
        assert stats["stream_regs"] >= engine.fused.num_regs
        engine.close()


# ----------------------------------------------------------------------
class TestPackedStream:
    def test_stream_cached_on_fused_program(self):
        g = random_dag(5, 40, 2, seed=3)
        res = compile_ffcl(g, SMALL)
        fused = fuse_trace(lower_program(res.program))
        assert pack_stream(fused) is pack_stream(fused)

    def test_stream_well_formed(self):
        g = random_dag(6, 70, 3, seed=9)
        res = compile_ffcl(g, SMALL)
        fused = fuse_trace(lower_program(res.program))
        stream = pack_stream(fused)
        starts = stream.level_starts
        assert starts[0] == 0
        assert starts[-1] == stream.num_instructions
        assert np.all(np.diff(starts) >= 1)
        assert stream.num_levels == fused.num_levels
        assert stream.num_regs >= fused.num_regs
        for array in (stream.a_reg, stream.b_reg, stream.out_reg):
            assert int(array.min(initial=0)) >= 0
            assert int(array.max(initial=0)) < stream.num_regs
        # Constants are never destinations.
        assert 0 not in stream.out_reg
        assert 1 not in stream.out_reg
        # Hazard MOVs write only scratch rows, at level heads.
        movs = np.flatnonzero(stream.ops == OP_MOV)
        assert all(
            int(stream.out_reg[i]) >= fused.num_regs for i in movs
        )

    def test_sequential_interpreter_matches_fused_kernels(self):
        g = random_dag(6, 70, 3, seed=11)
        res = compile_ffcl(g, SMALL)
        engine = create_engine("fused", res.program)
        fused = engine.fused
        stream = pack_stream(fused)
        for words in (1, 3):
            stim = random_stimulus(
                res.program.graph, array_size=words, seed=words
            )
            values = np.zeros((stream.num_regs, words), dtype=np.uint64)
            values[1] = np.uint64(0xFFFFFFFFFFFFFFFF)
            for name, reg in fused.pi_regs.items():
                values[reg] = np.asarray(stim[name], dtype=np.uint64)
            execute_stream(stream, values)
            expected = engine.run(stim)
            for name, reg in fused.output_regs.items():
                assert np.array_equal(
                    values[reg], expected.outputs[name]
                ), name


# ----------------------------------------------------------------------
class TestNativeParity:
    @pytest.mark.parametrize(
        "factory", MODEL_FACTORIES, ids=lambda f: f.__name__
    )
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_backend_matrix_bit_identical(self, factory, backend):
        """The acceptance matrix: every backend x every model workload,
        outputs AND statistics, repeated runs on one session."""
        res = _compile_block(factory)
        graph = res.program.graph
        fused = Session(res.program, engine="fused")
        native = Session(
            res.program,
            engine="native",
            engine_options={
                "backend": backend,
                "threads": 4,
                "min_shard_words": 1,
            },
        )
        for batch, array_size in enumerate((1, 5, 64)):
            stim = random_stimulus(
                graph, array_size=array_size, seed=batch
            )
            ref = evaluate_graph(graph, stim)
            out = native.run(stim)
            _assert_same_result(out, fused.run(stim), (backend, batch))
            for name, word in ref.items():
                assert np.array_equal(out.outputs[name], word), name

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_artifact_round_trip_bit_identical(self, backend):
        res = _compile_block(lenet5_workload)
        artifact = ExecutableArtifact.from_bytes(
            ExecutableArtifact.from_compile(res).to_bytes()
        )
        session = artifact.session(
            engine="native",
            engine_options={
                "backend": backend, "threads": 2, "min_shard_words": 1,
            },
        )
        fused = Session(res.program, engine="fused")
        stim = random_stimulus(artifact.graph, array_size=8, seed=5)
        _assert_same_result(
            session.run(stim), fused.run(stim), backend
        )

    def test_threaded_sharding_actually_splits(self):
        g = random_dag(5, 40, 2, seed=7)
        res = compile_ffcl(g, SMALL)
        engine = NativeEngine(
            res.program, backend="threaded", threads=4, min_shard_words=1
        )
        assert engine._shard_count(8) == 4
        assert engine._shard_count(2) == 2
        stim = random_stimulus(res.program.graph, array_size=8, seed=1)
        ref = evaluate_graph(res.program.graph, stim)
        out = engine.run(stim)
        for name, word in ref.items():
            assert np.array_equal(out.outputs[name], word), name
        engine.close()

    def test_threaded_crossover_to_single_thread(self):
        """Below min_shard_words the threaded backend must not spin up
        the executor at all — it falls through to the fused kernels."""
        g = random_dag(5, 40, 2, seed=8)
        res = compile_ffcl(g, SMALL)
        engine = NativeEngine(
            res.program, backend="threaded", threads=4,
            min_shard_words=64,
        )
        stim = random_stimulus(res.program.graph, array_size=2, seed=0)
        ref = evaluate_graph(res.program.graph, stim)
        out = engine.run(stim)
        assert engine._executor is None  # small batch: no threads
        for name, word in ref.items():
            assert np.array_equal(out.outputs[name], word), name

    def test_scalar_and_alternating_shapes(self):
        g = random_dag(5, 40, 2, seed=9)
        res = compile_ffcl(g, SMALL)
        session = Session(
            res.program, engine="native",
            engine_options={
                "backend": "threaded", "threads": 2, "min_shard_words": 1,
            },
        )
        fused = Session(res.program, engine="fused")
        graph = res.program.graph
        for array_size in (1, 5, 1, 64, 5, None):
            if array_size is None:
                stim = {
                    name: np.uint64(3 + i)
                    for i, name in enumerate(
                        graph.input_name(nid) for nid in graph.inputs
                    )
                }
            else:
                stim = random_stimulus(
                    graph, array_size=array_size, seed=2
                )
            out = session.run(stim)
            expected = fused.run(stim)
            _assert_same_result(out, expected, array_size)
            for name, word in expected.outputs.items():
                assert out.outputs[name].shape == word.shape, name

    def test_shared_session_concurrent_runs_stay_correct(self):
        """One native Session shared across caller threads while the
        engine itself shards across its own pool: the run lock plus
        per-shard workspaces keep results bit-exact."""
        g = random_dag(5, 40, 2, seed=22)
        res = compile_ffcl(g, SMALL)
        session = Session(
            res.program, engine="native",
            engine_options={
                "backend": "threaded", "threads": 2, "min_shard_words": 1,
            },
        )
        graph = res.program.graph
        stims = [
            random_stimulus(graph, array_size=4, seed=s) for s in range(4)
        ]
        refs = [evaluate_graph(graph, stim) for stim in stims]
        mismatches = []

        def worker(index):
            for _ in range(25):
                out = session.run(stims[index])
                for name, word in refs[index].items():
                    if not np.array_equal(out.outputs[name], word):
                        mismatches.append((index, name))
                        return

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not mismatches

    def test_profile_levels_reports_backend(self):
        g = random_dag(5, 40, 2, seed=12)
        res = compile_ffcl(g, SMALL)
        engine = NativeEngine(
            res.program, backend="threaded", threads=2, min_shard_words=1
        )
        stim = random_stimulus(res.program.graph, array_size=4, seed=0)
        records = engine.profile_levels(stim)
        assert len(records) == engine.fused.num_levels
        assert all(r["seconds"] >= 0 for r in records)
        assert all(r["backend"] == "threaded" for r in records)
        # Profiling leaves the engine consistent: outputs still check out.
        ref = evaluate_graph(res.program.graph, stim)
        out = engine.run(stim)
        for name, word in ref.items():
            assert np.array_equal(out.outputs[name], word), name
        engine.close()


# ----------------------------------------------------------------------
class TestOptionsPlumbing:
    def test_session_rejects_options_with_engine_instance(self):
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, TINY)
        engine = create_engine("fused", res.program)
        with pytest.raises(ValueError, match="engine_options"):
            Session(
                res.program, engine=engine,
                engine_options={"rowwise_min_words": 1},
            )

    def test_session_rejects_unknown_option(self):
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, TINY)
        with pytest.raises(TypeError):
            Session(
                res.program, engine="cycle",
                engine_options={"backend": "threaded"},
            )

    def test_cross_check_forwards_options(self):
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, TINY)
        ok, _outputs, _ref = cross_check(
            res.program, seed=1, engine="native",
            engine_options={"backend": "threaded", "threads": 2},
        )
        assert ok

    def test_serve_config_carries_options(self):
        serving = ServeConfig(
            engine="native",
            engine_options={"backend": "threaded", "threads": 2},
        )
        assert serving.describe()["engine_options"] == {
            "backend": "threaded", "threads": 2,
        }
        # replace() keeps them.
        assert serving.replace(num_workers=4).engine_options == {
            "backend": "threaded", "threads": 2,
        }

    def test_worker_pool_builds_native_workers(self):
        g = random_dag(5, 40, 2, seed=13)
        res = compile_ffcl(g, SMALL)
        pool = WorkerPool(
            res.program, num_workers=2, engine="native",
            engine_options={
                "backend": "threaded", "threads": 2, "min_shard_words": 1,
            },
        )
        try:
            fused = Session(res.program, engine="fused")
            stims = [
                random_stimulus(res.program.graph, array_size=4, seed=s)
                for s in range(4)
            ]
            futures = [pool.submit(stim) for stim in stims]
            for stim, future in zip(stims, futures):
                _assert_same_result(
                    future.result(), fused.run(stim), "pool"
                )
        finally:
            pool.close()

    def test_serve_layer_end_to_end_native(self):
        g = random_dag(5, 40, 2, seed=14)
        res = compile_ffcl(g, SMALL)
        stims = [
            random_stimulus(res.program.graph, array_size=2, seed=s)
            for s in range(6)
        ]
        fused = Session(res.program, engine="fused")
        results = serve(
            res.program, stims,
            serving=ServeConfig(
                engine="native",
                engine_options={
                    "backend": "threaded",
                    "threads": 2,
                    "min_shard_words": 1,
                },
                num_workers=2,
            ),
        )
        for stim, out in zip(stims, results):
            _assert_same_result(out, fused.run(stim), "serve")

    def test_rowwise_min_words_reaches_native(self):
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, TINY)
        engine = create_engine(
            "native", res.program,
            backend="fused", rowwise_min_words=1,
        )
        assert engine.rowwise_min_words == 1
        stim = random_stimulus(res.program.graph, array_size=2, seed=0)
        ref = evaluate_graph(res.program.graph, stim)
        out = engine.run(stim)
        for name, word in ref.items():
            assert np.array_equal(out.outputs[name], word), name


# ----------------------------------------------------------------------
class TestNativeProperties:
    @settings(deadline=None, max_examples=15)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_inputs=st.integers(min_value=2, max_value=6),
        num_gates=st.integers(min_value=5, max_value=60),
        array_size=st.integers(min_value=1, max_value=9),
        threads=st.integers(min_value=1, max_value=4),
    )
    def test_threaded_backend_bit_identical(
        self, seed, num_inputs, num_gates, array_size, threads
    ):
        """Word sharding never changes a single output bit or statistic,
        for arbitrary graphs, batch sizes, and thread counts."""
        g = random_dag(num_inputs, num_gates, 2, seed=seed)
        res = compile_ffcl(g, TINY)
        stim = random_stimulus(
            res.program.graph, array_size=array_size, seed=seed
        )
        fused = create_engine("fused", res.program).run(stim)
        engine = NativeEngine(
            res.program, backend="threaded",
            threads=threads, min_shard_words=1,
        )
        try:
            _assert_same_result(engine.run(stim), fused, seed)
        finally:
            engine.close()

    @settings(deadline=None, max_examples=15)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        array_size=st.integers(min_value=1, max_value=5),
    )
    def test_packed_stream_bit_identical(self, seed, array_size):
        """The sequential stream semantics (hazard MOVs included) equal
        the per-level fused semantics for arbitrary graphs."""
        g = random_dag(5, 45, 2, seed=seed)
        res = compile_ffcl(g, TINY)
        engine = create_engine("fused", res.program)
        fused = engine.fused
        stream = pack_stream(fused)
        stim = random_stimulus(
            res.program.graph, array_size=array_size, seed=seed
        )
        values = np.zeros(
            (stream.num_regs, array_size), dtype=np.uint64
        )
        values[1] = np.uint64(0xFFFFFFFFFFFFFFFF)
        for name, reg in fused.pi_regs.items():
            values[reg] = np.asarray(stim[name], dtype=np.uint64)
        execute_stream(stream, values)
        expected = engine.run(stim)
        for name, reg in fused.output_regs.items():
            assert np.array_equal(
                values[reg], expected.outputs[name]
            ), name
