"""Tests for the NullaNet substrate: binarization, training, extraction."""

import numpy as np
import pytest

from repro.nullanet import (
    BinaryMLP,
    LayerSpec,
    TrainConfig,
    binarize_weights,
    evaluate_ffcl_layer,
    extract_neuron,
    layer_to_graph,
    majority_dataset,
    neuron_threshold,
    neuron_truth_table,
    run_nullanet_flow,
    sign_activation,
    synthetic_jsc,
    synthetic_mnist,
    synthetic_nid,
    threshold_fires,
    to_bipolar,
    to_bits,
)
from repro.nullanet.pipeline import popcount_readout


class TestBinarize:
    def test_sign_activation_zero_positive(self):
        z = np.array([-1.0, 0.0, 2.0])
        assert np.array_equal(sign_activation(z), [-1.0, 1.0, 1.0])

    def test_bipolar_roundtrip(self):
        bits = np.array([[0, 1, 1, 0]], dtype=np.int8)
        assert np.array_equal(to_bits(to_bipolar(bits)), bits)

    def test_binarize_weights(self):
        w = np.array([-0.3, 0.0, 1.7])
        assert np.array_equal(binarize_weights(w), [-1.0, 1.0, 1.0])

    def test_threshold_fold_matches_bipolar_neuron(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            k = int(rng.integers(2, 8))
            w = rng.choice([-1.0, 1.0], size=k)
            b = float(rng.normal())
            u = rng.integers(0, 2, size=(16, k))
            folded_w, t = neuron_threshold(w, b)
            direct = (to_bipolar(u) @ w + b) >= 0
            folded = threshold_fires(folded_w, t, u)
            assert np.array_equal(direct, folded)


class TestNeuronTruthTable:
    def test_and_like_neuron(self):
        # w=[1,1], bias such that both inputs must be 1.
        table = neuron_truth_table(np.array([1.0, 1.0]), -1.0)
        assert table.minterms() == [3]

    def test_or_like_neuron(self):
        table = neuron_truth_table(np.array([1.0, 1.0]), 1.0)
        assert sorted(table.minterms()) == [1, 2, 3]

    def test_observed_patterns_become_care_set(self):
        observed = np.array([[0, 0], [1, 1]], dtype=np.int8)
        table = neuron_truth_table(np.array([1.0, 1.0]), -1.0, observed)
        assert table.dc_minterms() == [1, 2]

    def test_fan_in_limit(self):
        with pytest.raises(ValueError):
            neuron_truth_table(np.ones(20), 0.0)


class TestBinaryMLP:
    def test_sparse_connectivity_respected(self):
        model = BinaryMLP(10, [LayerSpec(6, 3)], num_classes=2, seed=0)
        for j in range(6):
            assert model.neuron_connectivity(0, j).size == 3

    def test_training_reduces_loss(self):
        ds = majority_dataset(num_features=7)
        model = BinaryMLP(7, [LayerSpec(8, 5), LayerSpec(4, 4)], 2, seed=0)
        losses = model.train(
            ds.x_train, ds.y_train, TrainConfig(epochs=10, seed=0)
        )
        assert losses[-1] < losses[0]

    def test_learns_majority_above_chance(self):
        ds = majority_dataset(num_features=7)
        model = BinaryMLP(7, [LayerSpec(8, 5), LayerSpec(4, 4)], 2, seed=1)
        model.train(ds.x_train, ds.y_train, TrainConfig(epochs=20, seed=1))
        assert model.accuracy(ds.x_test, ds.y_test) > 0.65

    def test_tied_head_is_group_sum(self):
        model = BinaryMLP(6, [LayerSpec(6, 4)], num_classes=3, seed=0)
        model.tie_head_to_groups(2)
        assert model.freeze_head
        assert model.head_w.shape == (6, 3)
        assert model.head_w[:2, 0].sum() == 2

    def test_tied_head_width_mismatch_rejected(self):
        model = BinaryMLP(6, [LayerSpec(5, 4)], num_classes=3, seed=0)
        with pytest.raises(ValueError):
            model.tie_head_to_groups(2)


class TestExtraction:
    def make_model(self, seed=0):
        ds = majority_dataset(num_features=7)
        model = BinaryMLP(7, [LayerSpec(6, 4), LayerSpec(4, 4)], 2, seed=seed)
        model.train(ds.x_train, ds.y_train, TrainConfig(epochs=5, seed=seed))
        return ds, model

    def test_neuron_function_matches_model(self):
        ds, model = self.make_model()
        func = extract_neuron(model, 0, 0)
        # Evaluate the extracted table against the model's layer-0 output.
        acts = to_bits(model.hidden_forward(ds.x_test)[0])
        support = func.support
        for row in range(20):
            pattern = 0
            for i, s in enumerate(support):
                pattern |= int(ds.x_test[row, s]) << i
            assert func.table.value(pattern) == acts[row, 0]

    def test_layer_graph_exact_without_dcs(self):
        ds, model = self.make_model(seed=2)
        graph = layer_to_graph(model, 0, observed_inputs=None)
        in_names = [f"l0_i{i}" for i in range(7)]
        out_names = [f"l0_o{j}" for j in range(6)]
        x = ds.x_test[:100]
        stim = {f"l0_i{i}": x[:, i] for i in range(7)}
        bits = evaluate_ffcl_layer(
            graph,
            np.stack([x[:, i] for i in range(7)], axis=1),
            in_names,
            out_names,
        )
        expected = to_bits(model.hidden_forward(x)[0])
        assert np.array_equal(bits, expected)

    def test_neuron_subset_extraction(self):
        _, model = self.make_model(seed=3)
        graph = layer_to_graph(model, 0, neurons=[1, 3])
        assert graph.num_outputs == 2


class TestFullFlow:
    def test_majority_flow(self):
        ds = majority_dataset(num_features=7)
        res = run_nullanet_flow(
            ds,
            hidden=[LayerSpec(8, 5)],
            train_config=TrainConfig(epochs=15, seed=1),
            bits_per_class=2,
            seed=1,
        )
        assert res.logic_test_accuracy > 0.6
        assert res.network_graph.num_outputs == 4  # 2 classes x 2 bits

    def test_logic_equals_binary_model_without_dcs(self):
        """The extracted FFCL must implement exactly the binarized network
        when no don't-care freedom is granted."""
        ds = majority_dataset(num_features=6)
        res = run_nullanet_flow(
            ds,
            hidden=[LayerSpec(6, 4)],
            train_config=TrainConfig(epochs=8, seed=0),
            bits_per_class=2,
            use_dont_cares=False,
            seed=0,
        )
        assert res.logic_test_accuracy == pytest.approx(
            res.binary_test_accuracy
        )

    def test_popcount_readout(self):
        bits = np.array([[1, 0, 1, 1], [0, 0, 1, 0]])
        preds = popcount_readout(bits, 2)
        assert list(preds) == [1, 1]
        with pytest.raises(ValueError):
            popcount_readout(bits, 3)


class TestDatasets:
    @pytest.mark.parametrize(
        "factory,features,classes",
        [
            (synthetic_mnist, 64, 10),
            (synthetic_jsc, 48, 5),
            (synthetic_nid, 593, 2),
        ],
    )
    def test_shapes(self, factory, features, classes):
        ds = factory(num_train=100, num_test=50)
        assert ds.num_features == features
        assert ds.num_classes == classes
        assert ds.x_train.shape == (100, features)
        assert set(np.unique(ds.x_train)) <= {0, 1}

    def test_majority_is_learnable_by_definition(self):
        ds = majority_dataset(num_features=5)
        expected = (ds.x_test.sum(axis=1) > 2).astype(int)
        assert np.array_equal(ds.y_test, expected)
