"""Unit + property tests for the LogicGraph DAG (repro.netlist.graph)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import cells
from repro.netlist.graph import LogicGraph, graphs_equivalent
from repro.netlist.random_graphs import random_dag, random_layered_dag, random_tree


def xor_graph():
    g = LogicGraph("xor2")
    a = g.add_input("a")
    b = g.add_input("b")
    y = g.add_gate(cells.XOR, a, b)
    g.set_output("y", y)
    return g


class TestConstruction:
    def test_inputs_outputs(self):
        g = xor_graph()
        assert g.num_inputs == 2
        assert g.num_outputs == 1
        assert g.num_gates == 1
        assert g.input_name(g.inputs[0]) == "a"
        assert g.input_id("b") == g.inputs[1]

    def test_duplicate_input_name_rejected(self):
        g = LogicGraph()
        g.add_input("a")
        with pytest.raises(ValueError):
            g.add_input("a")

    def test_duplicate_output_name_rejected(self):
        g = xor_graph()
        with pytest.raises(ValueError):
            g.set_output("y", g.inputs[0])

    def test_gate_requires_existing_fanins(self):
        g = LogicGraph()
        a = g.add_input("a")
        with pytest.raises(KeyError):
            g.add_gate(cells.AND, a, 999)

    def test_source_ops_rejected_in_add_gate(self):
        g = LogicGraph()
        with pytest.raises(ValueError):
            g.add_gate(cells.INPUT)

    def test_wrong_fanin_count_rejected(self):
        g = LogicGraph()
        a = g.add_input("a")
        with pytest.raises(ValueError):
            g.add_gate(cells.AND, a)
        with pytest.raises(ValueError):
            g.add_gate(cells.NOT, a, a)

    def test_validate_passes_on_wellformed(self):
        random_dag(5, 30, 3, seed=0).validate()


class TestStructureQueries:
    def test_levels_sources_at_zero(self):
        g = xor_graph()
        lv = g.levels()
        for nid in g.inputs:
            assert lv[nid] == 0
        assert g.depth() == 1

    def test_levels_monotone_along_edges(self):
        g = random_dag(6, 50, 3, seed=1)
        lv = g.levels()
        for nid in g:
            for fid in g.fanins_of(nid):
                assert lv[fid] < lv[nid]

    def test_fanouts_inverse_of_fanins(self):
        g = random_dag(6, 50, 3, seed=2)
        fo = g.fanouts()
        for nid in g:
            for fid in g.fanins_of(nid):
                assert nid in fo[fid]

    def test_topological_order_respects_edges(self):
        g = random_dag(6, 50, 3, seed=3)
        pos = {nid: i for i, nid in enumerate(g.topological_order())}
        for nid in g:
            for fid in g.fanins_of(nid):
                assert pos[fid] < pos[nid]

    def test_transitive_fanin_contains_roots(self):
        g = random_dag(6, 40, 2, seed=4)
        cone = g.transitive_fanin(g.output_ids)
        assert set(g.output_ids) <= cone

    def test_dangling_nodes_are_dead(self):
        g = LogicGraph()
        a = g.add_input("a")
        b = g.add_input("b")
        live = g.add_gate(cells.AND, a, b)
        dead = g.add_gate(cells.OR, a, b)
        g.set_output("y", live)
        assert dead in g.dangling_nodes()
        assert live not in g.dangling_nodes()

    def test_level_widths_counts_gates_only(self):
        g = xor_graph()
        assert g.level_widths() == {1: 1}


class TestEvaluation:
    def test_xor_truth_table(self):
        g = xor_graph()
        for a in (0, 1):
            for b in (0, 1):
                out = g.evaluate_bits({"a": a, "b": b})
                assert out["y"] == a ^ b

    def test_bit_parallel_evaluation(self):
        g = xor_graph()
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2**64, size=5, dtype=np.uint64)
        b = rng.integers(0, 2**64, size=5, dtype=np.uint64)
        out = g.evaluate({"a": a, "b": b})
        assert np.array_equal(out["y"], a ^ b)

    def test_constants(self):
        g = LogicGraph()
        a = g.add_input("a")
        one = g.add_const(1)
        g.set_output("y", g.add_gate(cells.AND, a, one))
        assert g.evaluate_bits({"a": 1})["y"] == 1
        assert g.evaluate_bits({"a": 0})["y"] == 0

    def test_shape_mismatch_rejected(self):
        g = xor_graph()
        with pytest.raises(ValueError):
            g.evaluate(
                {
                    "a": np.zeros(1, dtype=np.uint64),
                    "b": np.zeros(2, dtype=np.uint64),
                }
            )

    def test_po_aliasing_pi(self):
        g = LogicGraph()
        a = g.add_input("a")
        g.set_output("y", a)
        assert g.evaluate_bits({"a": 1})["y"] == 1


class TestCopyExtract:
    def test_copy_is_independent(self):
        g = xor_graph()
        c = g.copy()
        c.add_input("extra")
        assert g.num_inputs == 2
        assert c.num_inputs == 3

    def test_extract_removes_dead_gates_keeps_pis(self):
        g = LogicGraph()
        a = g.add_input("a")
        b = g.add_input("b")
        unused_pi = g.add_input("c")
        live = g.add_gate(cells.AND, a, b)
        g.add_gate(cells.OR, a, b)  # dead
        g.set_output("y", live)
        e = g.extract()
        assert e.num_gates == 1
        # Interface preserved: dead PIs are kept.
        assert e.num_inputs == 3
        assert graphs_equivalent(g, e)

    def test_extract_equivalence_random(self):
        for seed in range(5):
            g = random_dag(6, 40, 3, seed=seed)
            assert graphs_equivalent(g, g.extract())


class TestGraphsEquivalent:
    def test_detects_inequivalence(self):
        g1 = xor_graph()
        g2 = LogicGraph("and2")
        a = g2.add_input("a")
        b = g2.add_input("b")
        g2.set_output("y", g2.add_gate(cells.AND, a, b))
        assert not graphs_equivalent(g1, g2)

    def test_detects_interface_mismatch(self):
        g1 = xor_graph()
        g2 = LogicGraph()
        a = g2.add_input("a")
        c = g2.add_input("c")
        g2.set_output("y", g2.add_gate(cells.XOR, a, c))
        assert not graphs_equivalent(g1, g2)


class TestRandomGenerators:
    def test_random_dag_shape(self):
        g = random_dag(7, 55, 4, seed=9)
        assert g.num_inputs == 7
        assert g.num_outputs == 4
        g.validate()

    def test_random_layered_widths(self):
        widths = [5, 4, 6]
        g = random_layered_dag(6, widths, seed=0)
        lw = g.level_widths()
        for i, w in enumerate(widths):
            assert lw[i + 1] == w

    def test_random_tree_single_output(self):
        g = random_tree(16, seed=0)
        assert g.num_outputs == 1
        assert g.depth() == 4  # balanced reduction of 16 leaves

    def test_generators_reject_bad_args(self):
        with pytest.raises(ValueError):
            random_dag(0, 5, 1)
        with pytest.raises(ValueError):
            random_layered_dag(4, [])
        with pytest.raises(ValueError):
            random_tree(1)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_inputs=st.integers(2, 8),
    num_gates=st.integers(1, 60),
)
def test_property_random_dag_levels_bound_depth(seed, num_inputs, num_gates):
    """Depth equals the max PO level and is bounded by the gate count."""
    g = random_dag(num_inputs, num_gates, 2, seed=seed)
    lv = g.levels()
    assert g.depth() == max(lv[nid] for nid in g.output_ids)
    assert g.depth() <= num_gates


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_evaluation_lanes_independent(seed):
    """Each packed bit lane evaluates independently: evaluating two words
    jointly equals evaluating them separately."""
    g = random_dag(4, 20, 2, seed=seed)
    rng = np.random.default_rng(seed)
    w1 = {g.input_name(i): rng.integers(0, 2**64, 1, dtype=np.uint64) for i in g.inputs}
    w2 = {g.input_name(i): rng.integers(0, 2**64, 1, dtype=np.uint64) for i in g.inputs}
    joint = {
        k: np.concatenate([w1[k], w2[k]]) for k in w1
    }
    out_joint = g.evaluate(joint)
    out1 = g.evaluate(w1)
    out2 = g.evaluate(w2)
    for name in out_joint:
        assert out_joint[name][0] == out1[name][0]
        assert out_joint[name][1] == out2[name][0]
