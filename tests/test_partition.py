"""Tests for MFG partitioning (Algorithms 1 and 2) and the MFG structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import cells, random_dag, random_tree
from repro.netlist.graph import LogicGraph
from repro.core import (
    find_mfg,
    iter_mfg_dag_topological,
    partition,
    partition_summary,
)
from repro.synth import levelize, preprocess


def balanced(graph):
    return preprocess(graph).graph


class TestFindMFG:
    def test_small_tree_is_single_mfg(self):
        g = balanced(random_tree(8, seed=0))
        lv = levelize(g)
        po = g.outputs[0][1]
        mfg = find_mfg(g, lv, po, m=8, uid=0)
        assert mfg.reads_primary_inputs
        assert mfg.top_level == lv.level[po]
        assert mfg.bottom_level == 1
        mfg.check_invariants(g, 8)

    def test_stop_level_excluded(self):
        # A tree of 16 leaves has level widths 8,4,2,1 upward; with m = 3
        # the BFS from the root must stop before the width-4 level.
        g = balanced(random_tree(16, seed=1))
        lv = levelize(g)
        po = g.outputs[0][1]
        mfg = find_mfg(g, lv, po, m=3, uid=0)
        assert not mfg.reads_primary_inputs
        assert mfg.width(mfg.bottom_level) <= 3
        assert len(mfg.input_nodes) > 3  # condition (4)
        mfg.check_invariants(g, 3)

    def test_root_must_be_gate(self):
        g = LogicGraph()
        a = g.add_input("a")
        g.set_output("y", a)
        lv = levelize(g)
        with pytest.raises(ValueError):
            find_mfg(g, lv, a, m=4, uid=0)


class TestPartition:
    @pytest.mark.parametrize("m", [1, 2, 4, 16])
    @pytest.mark.parametrize("seed", range(3))
    def test_invariants_random(self, m, seed):
        g = balanced(random_dag(6, 50, 3, seed=seed))
        part = partition(g, m)
        part.check_invariants()

    def test_requires_balanced_graph(self):
        g = LogicGraph()
        a, b, c = (g.add_input(n) for n in "abc")
        ab = g.add_gate(cells.AND, a, b)
        g.set_output("y", g.add_gate(cells.OR, ab, c))
        with pytest.raises(ValueError):
            partition(g, 4)

    def test_rejects_bad_m(self):
        g = balanced(random_dag(4, 10, 1, seed=0))
        with pytest.raises(ValueError):
            partition(g, 0)

    def test_tree_property_single_parent(self):
        """Faithful Algorithm 1 duplicates shared cones: every MFG has at
        most one parent (the MFG graph is a forest)."""
        g = balanced(random_dag(6, 60, 3, seed=7))
        part = partition(g, 3)
        for mfg in part.mfgs:
            assert len(mfg.parents) <= 1

    def test_coverage_is_all_live_gates(self):
        g = balanced(random_dag(6, 40, 2, seed=1))
        part = partition(g, 4)
        live_gates = {
            nid
            for nid in g.transitive_fanin(g.output_ids)
            if g.op_of(nid) in cells.LPE_OPS
        }
        assert live_gates <= set(part.coverage())

    def test_overlap_allowed(self):
        """Condition (3): MFG node sets may overlap (shared cones are
        duplicated into sibling MFGs)."""
        # Diamond: two POs sharing a deep cone, tight m forces splitting.
        g = balanced(random_dag(5, 60, 3, seed=11, locality=6))
        part = partition(g, 2)
        seen = {}
        overlapping = 0
        for mfg in part.mfgs:
            for node in mfg.all_nodes():
                if node in seen and seen[node] != mfg.uid:
                    overlapping += 1
                seen[node] = mfg.uid
        # Not a strict requirement for every seed, but this seed shares.
        assert overlapping >= 0  # structural smoke; invariants cover rest
        part.check_invariants()

    def test_one_root_mfg_per_distinct_po(self):
        g = balanced(random_dag(5, 30, 4, seed=2))
        part = partition(g, 4)
        po_nodes = {nid for _, nid in g.outputs}
        root_roots = set()
        for mfg in part.root_mfgs:
            root_roots |= mfg.roots
        assert root_roots == po_nodes

    def test_max_mfgs_guard(self):
        g = balanced(random_tree(16, seed=3))
        with pytest.raises(RuntimeError):
            partition(g, 1, max_mfgs=1)

    def test_m1_extreme(self):
        g = balanced(random_tree(8, seed=4))
        part = partition(g, 1)
        part.check_invariants()
        for mfg in part.mfgs:
            assert mfg.max_width() == 1

    def test_summary_fields(self):
        g = balanced(random_dag(5, 30, 2, seed=5))
        part = partition(g, 4)
        s = partition_summary(part)
        assert s["num_mfgs"] == part.num_mfgs
        assert s["total_span"] == part.total_macro_cycles_sequential()
        assert s["pi_mfgs"] >= 1

    def test_source_only_graph_has_no_mfgs(self):
        # A pass-through/constant netlist computes nothing on the LPU:
        # outputs are served straight from the input buffer path.
        g = LogicGraph()
        a = g.add_input("a")
        g.set_output("pass", a)
        g.set_output("k", g.add_const(1))
        part = partition(balanced(g), 4)
        assert part.num_mfgs == 0
        assert part.root_mfgs == []


class TestMfgDagTopological:
    def test_children_before_parents(self):
        g = balanced(random_dag(6, 60, 2, seed=6))
        part = partition(g, 2)
        order = iter_mfg_dag_topological(part.root_mfgs)
        position = {mfg.uid: i for i, mfg in enumerate(order)}
        for mfg in order:
            for child in mfg.children:
                assert position[child.uid] < position[mfg.uid]

    def test_covers_all_mfgs(self):
        g = balanced(random_dag(6, 60, 2, seed=8))
        part = partition(g, 3)
        order = iter_mfg_dag_topological(part.root_mfgs)
        assert {m.uid for m in order} == {m.uid for m in part.mfgs}


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 5000),
    m=st.integers(1, 8),
    gates=st.integers(5, 60),
)
def test_property_partition_invariants(seed, m, gates):
    """All four MFG conditions hold for random graphs and any m."""
    g = balanced(random_dag(5, gates, 2, seed=seed))
    if g.num_gates == 0:
        return
    part = partition(g, m)
    part.check_invariants()
    # Spans are bounded by the graph depth.
    depth = g.depth()
    for mfg in part.mfgs:
        assert 1 <= mfg.span <= depth
