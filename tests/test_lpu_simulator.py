"""Tests for the LPU hardware model: the crown-jewel property is that the
macro-cycle-accurate simulator agrees bit-for-bit with functional evaluation
of the source netlist for every compiled program."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LPUConfig, compile_ffcl
from repro.lpu import (
    InputDataBuffer,
    InstructionQueue,
    InstructionQueueArray,
    LPUSimulator,
    MulticastSwitch,
    OutputDataBuffer,
    ReadAddressShiftRegister,
    RouteRequest,
    cross_check,
    random_stimulus,
    simulate,
)
from repro.core.isa import NOP_INSTRUCTION
from repro.netlist import cells, parse_verilog, random_dag, random_tree
from repro.netlist.graph import LogicGraph


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_functional_random(self, seed):
        g = random_dag(6, 50, 3, seed=seed)
        res = compile_ffcl(g, LPUConfig(num_lpvs=4, lpes_per_lpv=4))
        ok, lpu_out, ref = cross_check(res.program, seed=seed)
        assert ok

    @pytest.mark.parametrize("n,m", [(1, 4), (2, 2), (3, 5), (8, 2)])
    def test_matches_across_configs(self, n, m):
        g = random_dag(6, 60, 3, seed=42)
        res = compile_ffcl(g, LPUConfig(num_lpvs=n, lpes_per_lpv=m))
        ok, _, _ = cross_check(res.program, seed=n * 100 + m)
        assert ok

    @pytest.mark.parametrize("merge", [True, False])
    @pytest.mark.parametrize("policy", ["pipelined", "sequential"])
    def test_matches_across_modes(self, merge, policy):
        g = random_dag(6, 45, 2, seed=9)
        res = compile_ffcl(
            g, LPUConfig(num_lpvs=3, lpes_per_lpv=3),
            merge=merge, policy=policy,
        )
        ok, _, _ = cross_check(res.program, seed=17)
        assert ok

    def test_deep_tree_with_circulation(self):
        g = random_tree(128, seed=1)  # depth 7 > n = 2
        res = compile_ffcl(g, LPUConfig(num_lpvs=2, lpes_per_lpv=4))
        assert res.metrics.circulations > 0
        ok, _, _ = cross_check(res.program, seed=5)
        assert ok

    def test_verilog_to_silicon_path(self):
        src = """
        module adder (a, b, cin, sum, cout);
          input a, b, cin; output sum, cout;
          wire t1, t2, t3;
          xor g1 (t1, a, b);  xor g2 (sum, t1, cin);
          and g3 (t2, a, b);  and g4 (t3, t1, cin);
          or  g5 (cout, t2, t3);
        endmodule
        """
        g = parse_verilog(src)
        res = compile_ffcl(g, LPUConfig(num_lpvs=3, lpes_per_lpv=2))
        sim = LPUSimulator(res.program)

        def word(bit):
            return np.array(
                [0xFFFFFFFFFFFFFFFF if bit else 0], dtype=np.uint64
            )

        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    out = sim.run({"a": word(a), "b": word(b), "cin": word(cin)})
                    s = int(out.outputs["sum"][0] & np.uint64(1))
                    c = int(out.outputs["cout"][0] & np.uint64(1))
                    assert s == (a + b + cin) % 2
                    assert c == (a + b + cin) // 2

    def test_batch_lanes_independent(self):
        g = random_dag(5, 40, 2, seed=3)
        res = compile_ffcl(g, LPUConfig(num_lpvs=3, lpes_per_lpv=3))
        stim = random_stimulus(g, array_size=4, seed=1)
        result = simulate(res.program, stim)
        ref = g.evaluate(stim)
        for name in ref:
            assert np.array_equal(result.outputs[name], ref[name])

    def test_missing_input_rejected(self):
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, LPUConfig(num_lpvs=2, lpes_per_lpv=3))
        with pytest.raises(KeyError):
            simulate(res.program, {})

    def test_simulation_statistics(self):
        g = random_dag(5, 40, 2, seed=4)
        res = compile_ffcl(g, LPUConfig(num_lpvs=3, lpes_per_lpv=3))
        result = simulate(res.program, random_stimulus(g))
        assert result.macro_cycles == res.schedule.makespan
        assert result.clock_cycles == result.macro_cycles * res.config.t_c
        assert result.compute_instructions_executed > 0
        assert result.peak_buffer_words >= 1

    def test_statistics_reset_between_runs(self):
        """Regression: switch statistics must be per-run — reusing one
        simulator used to inflate switch_routes run after run."""
        g = random_dag(6, 50, 3, seed=2)
        res = compile_ffcl(g, LPUConfig(num_lpvs=4, lpes_per_lpv=4))
        sim = LPUSimulator(res.program)
        first = sim.run(random_stimulus(g, seed=0))
        second = sim.run(random_stimulus(g, seed=1))
        assert second.switch_routes == first.switch_routes
        assert second.buffer_writes == first.buffer_writes
        assert second.peak_buffer_words == first.peak_buffer_words
        assert (
            second.compute_instructions_executed
            == first.compute_instructions_executed
        )

    def test_po_aliased_to_pi(self):
        g = LogicGraph()
        a = g.add_input("a")
        b = g.add_input("b")
        g.set_output("pass", a)
        g.set_output("y", g.add_gate(cells.AND, a, b))
        res = compile_ffcl(g, LPUConfig(num_lpvs=2, lpes_per_lpv=2))
        ok, _, _ = cross_check(res.program, seed=0)
        assert ok


class TestSwitch:
    def test_multicast_routing(self):
        sw = MulticastSwitch(4, 4)
        data = [np.uint64(i) for i in range(4)]
        routed = sw.route(
            data,
            [
                RouteRequest(0, 0, "a"),
                RouteRequest(0, 1, "a"),  # multicast source 0
                RouteRequest(3, 2, "b"),
            ],
        )
        assert routed[(0, "a")] == np.uint64(0)
        assert routed[(1, "a")] == np.uint64(0)
        assert routed[(2, "b")] == np.uint64(3)
        assert sw.peak_fanout == 2

    def test_double_driven_port_rejected(self):
        sw = MulticastSwitch(2, 2)
        with pytest.raises(ValueError):
            sw.route(
                [np.uint64(0), np.uint64(1)],
                [RouteRequest(0, 0, "a"), RouteRequest(1, 0, "a")],
            )

    def test_out_of_range_rejected(self):
        sw = MulticastSwitch(2, 2)
        with pytest.raises(ValueError):
            sw.route([np.uint64(0)] * 2, [RouteRequest(5, 0, "a")])

    def test_latency_matches_stages(self):
        assert MulticastSwitch(2, 2, stages=5).latency_cycles == 5


class TestQueues:
    def test_shift_register_addressing(self):
        sr = ReadAddressShiftRegister(4, base=0)
        # The address injected at cycle c reaches LPV k at cycle c + k.
        assert sr.address_for(5, 0) == 5
        assert sr.address_for(5, 3) == 2
        assert sr.address_for(1, 3) is None  # pipeline still filling

    def test_queue_write_read(self):
        q = InstructionQueue(0, m=2)
        vec = [NOP_INSTRUCTION, NOP_INSTRUCTION]
        q.write(3, vec)
        assert q.read(3) == vec
        assert all(i.is_pure_nop for i in q.read(7))
        assert q.depth == 4

    def test_double_write_rejected(self):
        q = InstructionQueue(0, m=1)
        q.write(0, [NOP_INSTRUCTION])
        with pytest.raises(ValueError):
            q.write(0, [NOP_INSTRUCTION])

    def test_wrong_width_rejected(self):
        q = InstructionQueue(0, m=2)
        with pytest.raises(ValueError):
            q.write(0, [NOP_INSTRUCTION])

    def test_array_fetch(self):
        arr = InstructionQueueArray(2, 1, base=0)
        arr.queues[1].write(0, [NOP_INSTRUCTION])
        assert arr.fetch(1, 1) == [NOP_INSTRUCTION]
        assert arr.total_entries == 1


class TestBuffers:
    def test_input_buffer_counter_order(self):
        buf = InputDataBuffer()
        w = np.zeros(1, dtype=np.uint64)
        buf.load({0: {(0, "a"): 10}, 2: {(0, "a"): 11}}, {10: w, 11: w})
        assert buf.num_entries == 2
        assert buf.fetch(0) is not None
        assert buf.fetch(1) is None  # no entry: idle cycle
        assert buf.fetch(2) is not None

    def test_output_buffer_lifecycle(self):
        buf = OutputDataBuffer()
        w = np.ones(1, dtype=np.uint64)
        buf.write(("a", 1), w)
        assert ("a", 1) in buf
        assert np.array_equal(buf.read(("a", 1)), w)
        assert buf.peak_words == 1
        with pytest.raises(KeyError):
            buf.read(("ghost", 0))

    def test_output_buffer_rejects_invalid(self):
        buf = OutputDataBuffer()
        with pytest.raises(ValueError):
            buf.write(("a", 1), None)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 3000),
    n=st.integers(1, 6),
    m=st.integers(2, 6),
    gates=st.integers(5, 50),
)
def test_property_simulator_matches_functional(seed, n, m, gates):
    """For ANY random netlist and ANY LPU size, compiled execution on the
    cycle-accurate model equals functional evaluation (the paper's whole
    premise: the LPU is a faithful programmable substrate for FFCL)."""
    g = random_dag(5, gates, 2, seed=seed)
    res = compile_ffcl(g, LPUConfig(num_lpvs=n, lpes_per_lpv=m))
    ok, _, _ = cross_check(res.program, seed=seed)
    assert ok
