"""Tests for the pass-manager compile pipeline (repro.compiler).

The load-bearing properties:

* the ``paper`` pipeline (and therefore the ``preprocess``/``compile_ffcl``
  facades, which now run through the pass manager) is **bit-identical** to
  the pre-refactor monolithic call chain — reconstructed here from the raw
  stage functions — for every model workload and every option combination,
* the parallel per-MFG codegen equals the sequential reference generator
  for every worker count,
* pass-level cache hits return identical artifacts, and pipelines sharing
  a prefix reuse it,
* the merge pass leaves the unmerged partition pristine,
* the serving-layer ProgramCache keys include the pipeline identity.
"""

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import (
    PassCache,
    PassManager,
    PIPELINES,
    available_passes,
    compile_with_pipeline,
    format_pass_report,
    generate_program_parallel,
    pipeline_from_options,
    pipeline_id,
    resolve_pipeline,
)
from repro.compiler.state import PipelineError
from repro.core import LPUConfig, compile_ffcl
from repro.core.codegen import generate_program
from repro.core.merge import clone_partition, merge_partition
from repro.core.metrics import CompileMetrics
from repro.core.partition import partition
from repro.core.schedule import build_schedule
from repro.models import (
    jsc_l_workload,
    jsc_m_workload,
    layer_block,
    lenet5_workload,
    mlpmixer_b4_workload,
    mlpmixer_s4_workload,
    nid_workload,
    vgg16_workload,
)
from repro.netlist import cells, random_dag, random_tree
from repro.serve.cache import ProgramCache
from repro.synth.balance import balance
from repro.synth.levelize import is_levelized_strict, levelize
from repro.synth.pipeline import PreprocessReport, PreprocessResult, preprocess
from repro.synth.rebalance import balance_trees
from repro.synth.simplify import simplify
from repro.synth.techmap import map_to_basis

SMALL = LPUConfig(num_lpvs=4, lpes_per_lpv=8)
TINY = LPUConfig(num_lpvs=2, lpes_per_lpv=4)

MODEL_FACTORIES = [
    vgg16_workload,
    lenet5_workload,
    mlpmixer_s4_workload,
    mlpmixer_b4_workload,
    nid_workload,
    jsc_m_workload,
    jsc_l_workload,
]


# ----------------------------------------------------------------------
# The pre-refactor reference implementations, composed from the raw stage
# functions exactly as the monolithic facades did before the pass manager.
# ----------------------------------------------------------------------
def reference_preprocess(graph, basis=None, optimize=True):
    gates_in = graph.num_gates
    depth_in = graph.depth()
    if optimize:
        g = balance_trees(graph)
        g = simplify(g)
        g = balance_trees(g)
        g = simplify(g)
    else:
        g = graph.extract()
    gates_simplified = g.num_gates
    if basis is not None:
        g = map_to_basis(g, basis)
    gates_mapped = g.num_gates
    balanced, bal_report = balance(g)
    assert is_levelized_strict(balanced)
    lv = levelize(balanced)
    report = PreprocessReport(
        gates_in=gates_in,
        gates_after_simplify=gates_simplified,
        gates_after_mapping=gates_mapped,
        gates_out=balanced.num_gates,
        depth_in=depth_in,
        depth_out=lv.max_level,
        balance=bal_report,
    )
    return PreprocessResult(graph=balanced, levels=lv, report=report)


def reference_compile(
    graph,
    config,
    merge=True,
    policy="pipelined",
    optimize=True,
    generate_code=True,
    basis=None,
):
    pre = reference_preprocess(graph, basis=basis, optimize=optimize)
    part_unmerged = partition(pre.graph, config.m)
    part = merge_partition(part_unmerged) if merge else part_unmerged
    schedule = build_schedule(part, config, policy=policy)
    program = (
        generate_program(schedule, pre.graph, config) if generate_code else None
    )
    metrics = CompileMetrics(
        name=graph.name,
        num_inputs=graph.num_inputs,
        num_outputs=graph.num_outputs,
        gates_source=graph.num_gates,
        gates_balanced=pre.graph.num_gates,
        buffers_inserted=pre.report.balance.buffers_inserted,
        depth=pre.levels.max_level,
        mfgs_before_merge=part_unmerged.num_mfgs,
        mfgs_after_merge=part.num_mfgs,
        policy=policy,
        makespan_macro_cycles=schedule.makespan,
        total_clock_cycles=schedule.total_clock_cycles,
        queue_depth=schedule.queue_depth,
        circulations=schedule.circulations,
        latency_seconds=config.macro_cycles_to_seconds(schedule.makespan),
        fps=config.fps(schedule.makespan),
        compute_instructions=(
            program.num_compute_instructions if program else None
        ),
        queue_entries=program.num_queue_entries if program else None,
        peak_buffer_words=program.peak_buffer_words if program else None,
    )
    return pre, program, metrics


def assert_programs_identical(a, b):
    if a is None or b is None:
        assert a is b
        return
    assert a.queues == b.queues
    assert a.input_reads == b.input_reads
    assert a.circulation_reads == b.circulation_reads
    assert a.buffer_writes == b.buffer_writes
    assert a.po_nodes == b.po_nodes
    assert a.po_buffer_keys == b.po_buffer_keys
    assert a.peak_buffer_words == b.peak_buffer_words
    assert a.buffer_spills == b.buffer_spills


def model_block(factory, sample_neurons=2, seed=0):
    model = factory()
    layer = min(model.layers, key=lambda layer: (layer.fan_in, layer.num_neurons))
    block, _ = layer_block(layer, sample_neurons=sample_neurons, seed=seed)
    return block


# ----------------------------------------------------------------------
# Pipeline equivalence: pass manager == pre-refactor chain, bit for bit
# ----------------------------------------------------------------------
class TestPipelineEquivalence:
    @pytest.mark.parametrize(
        "factory", MODEL_FACTORIES, ids=lambda f: f.__name__
    )
    def test_paper_pipeline_bit_identical_on_model_workloads(self, factory):
        block = model_block(factory)
        _pre, ref_program, ref_metrics = reference_compile(block, SMALL)
        result = compile_ffcl(block, SMALL)
        assert asdict(ref_metrics) == asdict(result.metrics)
        assert_programs_identical(ref_program, result.program)
        assert asdict(_pre.report) == asdict(result.preprocess.report)

    @pytest.mark.parametrize("merge", [True, False])
    @pytest.mark.parametrize("policy", ["pipelined", "sequential"])
    def test_option_matrix_bit_identical(self, merge, policy):
        g = random_dag(8, 300, 4, seed=11)
        for optimize in (True, False):
            for generate_code in (True, False):
                _pre, ref_program, ref_metrics = reference_compile(
                    g,
                    SMALL,
                    merge=merge,
                    policy=policy,
                    optimize=optimize,
                    generate_code=generate_code,
                )
                result = compile_ffcl(
                    g,
                    SMALL,
                    merge=merge,
                    policy=policy,
                    optimize=optimize,
                    generate_code=generate_code,
                )
                assert asdict(ref_metrics) == asdict(result.metrics)
                assert_programs_identical(ref_program, result.program)

    def test_basis_mapping_bit_identical(self):
        basis = frozenset(
            {cells.NAND, cells.NOR, cells.NOT, cells.BUF, cells.AND, cells.OR}
        )
        g = random_dag(6, 200, 3, seed=3)
        _pre, ref_program, ref_metrics = reference_compile(
            g, SMALL, basis=basis
        )
        result = compile_ffcl(g, SMALL, basis=basis)
        assert asdict(ref_metrics) == asdict(result.metrics)
        assert_programs_identical(ref_program, result.program)

    def test_preprocess_facade_bit_identical(self):
        g = random_dag(8, 250, 3, seed=7)
        ref = reference_preprocess(g)
        out = preprocess(g)
        assert asdict(ref.report) == asdict(out.report)
        from repro.netlist.graph import graphs_equivalent

        assert graphs_equivalent(ref.graph, out.graph)

    def test_named_pipeline_matches_option_form(self):
        g = random_dag(8, 200, 3, seed=9)
        via_name = compile_ffcl(g, SMALL, pipeline="no-merge")
        via_kwarg = compile_ffcl(g, SMALL, merge=False)
        assert asdict(via_name.metrics) == asdict(via_kwarg.metrics)
        assert_programs_identical(via_name.program, via_kwarg.program)

    def test_metrics_only_pipeline_skips_codegen(self):
        g = random_dag(6, 150, 3, seed=2)
        result = compile_ffcl(g, SMALL, pipeline="metrics-only")
        assert result.program is None
        assert result.metrics.compute_instructions is None
        assert [r.name for r in result.pass_records] == list(
            PIPELINES["metrics-only"]
        )


# ----------------------------------------------------------------------
# Parallel codegen parity
# ----------------------------------------------------------------------
class TestParallelCodegen:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts_identical(self, workers):
        g = random_dag(10, 400, 3, seed=21)
        pre = preprocess(g)
        part = merge_partition(partition(pre.graph, SMALL.m))
        schedule = build_schedule(part, SMALL)
        reference = generate_program(schedule, pre.graph, SMALL)
        parallel = generate_program_parallel(
            schedule, pre.graph, SMALL, workers=workers
        )
        assert_programs_identical(reference, parallel)

    def test_deep_circulating_workload_identical(self):
        g = random_tree(256, seed=4)  # depth 8 > n = 2 forces circulation
        pre = preprocess(g)
        part = merge_partition(partition(pre.graph, TINY.m))
        schedule = build_schedule(part, TINY)
        reference = generate_program(schedule, pre.graph, TINY)
        parallel = generate_program_parallel(
            schedule, pre.graph, TINY, workers=3
        )
        assert_programs_identical(reference, parallel)

    def test_codegen_workers_option_is_bit_identical(self):
        block = model_block(jsc_m_workload)
        a = compile_ffcl(block, SMALL, codegen_workers=1)
        b = compile_ffcl(block, SMALL, codegen_workers=4)
        assert_programs_identical(a.program, b.program)


# ----------------------------------------------------------------------
# Pass registry / pipeline resolution
# ----------------------------------------------------------------------
class TestPipelineResolution:
    def test_registry_contains_standard_passes(self):
        names = available_passes()
        for name in (
            "ingest",
            "rebalance",
            "simplify",
            "techmap",
            "balance",
            "levelize",
            "partition",
            "merge",
            "schedule",
            "codegen",
            "metrics",
        ):
            assert name in names

    def test_resolve_named_and_custom(self):
        assert resolve_pipeline("paper") == PIPELINES["paper"]
        assert resolve_pipeline("ingest, balance ,levelize") == (
            "ingest",
            "balance",
            "levelize",
        )
        assert resolve_pipeline(["ingest", "balance"]) == ("ingest", "balance")

    def test_unknown_pass_rejected(self):
        with pytest.raises(KeyError, match="unknown pass"):
            resolve_pipeline("ingest,frobnicate")
        with pytest.raises(ValueError, match="empty"):
            resolve_pipeline("")

    def test_pipeline_id_distinguishes_pipelines(self):
        assert pipeline_id("paper") != pipeline_id("no-merge")
        assert pipeline_id("paper") == pipeline_id(PIPELINES["paper"])

    def test_default_options_equal_paper_pipeline(self):
        assert pipeline_from_options() == PIPELINES["paper"]

    def test_partial_pipeline_state_and_result_error(self):
        g = random_dag(4, 60, 2, seed=1)
        manager = PassManager(
            ["ingest", "rebalance", "simplify", "techmap", "balance", "levelize"]
        )
        state = manager.run(g, SMALL)
        assert state.preprocess is not None
        assert state.schedule is None
        with pytest.raises(ValueError, match="schedule"):
            compile_with_pipeline(g, SMALL, pipeline=["ingest", "balance", "levelize"])

    def test_out_of_order_pipeline_raises(self):
        g = random_dag(4, 60, 2, seed=1)
        with pytest.raises(PipelineError, match="requires"):
            PassManager(["partition"]).run(g, SMALL)

    def test_pass_records_and_report(self):
        g = random_dag(6, 120, 3, seed=5)
        result = compile_ffcl(g, SMALL)
        names = [r.name for r in result.pass_records]
        assert names == list(PIPELINES["paper"])
        assert all(r.seconds >= 0 for r in result.pass_records)
        report = format_pass_report(result.pass_records)
        assert "codegen" in report and "total" in report
        final_sizes = result.pass_records[-1].sizes
        assert final_sizes["mfgs"] == result.partition.num_mfgs
        assert final_sizes["makespan"] == result.schedule.makespan


# ----------------------------------------------------------------------
# Pass-level caching
# ----------------------------------------------------------------------
class TestPassCache:
    def test_warm_compile_returns_identical_artifacts(self):
        g = random_dag(8, 250, 3, seed=13)
        cache = PassCache()
        cold = compile_ffcl(g, SMALL, pass_cache=cache)
        warm = compile_ffcl(g, SMALL, pass_cache=cache)
        # Every pass except the deliberately-uncached ingest is served.
        assert all(
            r.cache_hit for r in warm.pass_records if r.name != "ingest"
        )
        assert warm.program is cold.program
        assert warm.schedule is cold.schedule
        assert warm.partition is cold.partition
        assert warm.metrics is cold.metrics
        assert cache.stats.hits == len(PIPELINES["paper"]) - 1

    def test_prefix_reuse_across_pipelines(self):
        g = random_dag(8, 250, 3, seed=17)
        cache = PassCache()
        compile_ffcl(g, SMALL, pass_cache=cache)
        assert cache.stats.hits == 0
        result = compile_ffcl(g, SMALL, merge=False, pass_cache=cache)
        # Everything up to (and including) partition is shared with the
        # merged compile; schedule/codegen/metrics re-run.
        hits = {r.name: r.cache_hit for r in result.pass_records}
        for name in (
            "rebalance",
            "simplify",
            "techmap",
            "balance",
            "levelize",
            "partition",
        ):
            assert hits[name], name
        for name in ("ingest", "schedule", "codegen", "metrics"):
            assert not hits[name], name

    def test_policy_change_reuses_through_merge(self):
        g = random_dag(8, 250, 3, seed=19)
        cache = PassCache()
        compile_ffcl(g, SMALL, pass_cache=cache)
        result = compile_ffcl(g, SMALL, policy="sequential", pass_cache=cache)
        hits = {r.name: r.cache_hit for r in result.pass_records}
        assert hits["partition"] and hits["merge"]
        assert not hits["schedule"] and not hits["metrics"]

    def test_config_change_reuses_preprocess_only(self):
        g = random_dag(8, 250, 3, seed=23)
        cache = PassCache()
        compile_ffcl(g, SMALL, pass_cache=cache)
        other = LPUConfig(num_lpvs=8, lpes_per_lpv=16)
        result = compile_ffcl(g, other, pass_cache=cache)
        hits = {r.name: r.cache_hit for r in result.pass_records}
        # Pre-processing is config-independent; partitioning depends on m.
        for name in ("simplify", "balance", "levelize"):
            assert hits[name], name
        assert not hits["partition"]

    def test_structurally_equal_graphs_share_entries(self):
        g = random_dag(8, 200, 3, seed=29)
        cache = PassCache()
        compile_ffcl(g, SMALL, pass_cache=cache)
        warm = compile_ffcl(g.copy(), SMALL, pass_cache=cache)
        assert all(
            r.cache_hit for r in warm.pass_records if r.name != "ingest"
        )

    def test_pipeline_generator_spec_not_consumed(self):
        """A single-use iterable pipeline spec must not lose its first
        pass to the isinstance probe (regression)."""
        names = ["ingest", "rebalance", "simplify", "techmap", "balance",
                 "levelize"]
        manager = PassManager(iter(names))
        assert manager.pass_names == names

    def test_caller_mutation_cannot_poison_cache(self):
        """Ingest is uncached: mutating a compiled graph in place must
        never leak into cache entries keyed by its original content
        (regression)."""
        g = random_dag(6, 150, 3, seed=83)
        pristine = g.copy()
        cache = PassCache()
        compile_ffcl(g, SMALL, pass_cache=cache)
        # Caller mutates the compiled graph object in place.
        a, b = g.inputs[0], g.inputs[1]
        g.add_gate(cells.XOR, a, b)
        # A content-equal graph must compile against the *original*
        # content, identically to an uncached compile.
        warm = compile_ffcl(pristine, SMALL, pass_cache=cache)
        fresh = compile_ffcl(pristine, SMALL)
        assert asdict(warm.metrics) == asdict(fresh.metrics)
        assert_programs_identical(warm.program, fresh.program)

    def test_no_pass_snapshot_aliases_the_source_graph(self):
        """A pass that passes the caller's graph through untouched (e.g.
        techmap without a basis, when no rewrite pass ran before it) must
        not memoize that live alias (regression)."""
        g = random_dag(6, 150, 3, seed=89)
        cache = PassCache()
        PassManager(
            ["ingest", "techmap", "balance", "levelize"], cache=cache
        ).run(g)
        for snapshot in cache._entries.values():
            for value in snapshot.values():
                assert value is not g

    def test_eviction_and_capacity(self):
        cache = PassCache(capacity=4)
        g = random_dag(6, 150, 3, seed=31)
        compile_ffcl(g, SMALL, pass_cache=cache)
        assert len(cache) == 4  # LRU-bounded
        assert cache.stats.evictions > 0
        with pytest.raises(ValueError):
            PassCache(capacity=0)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=6),
        merge=st.booleans(),
        policy=st.sampled_from(["pipelined", "sequential"]),
    )
    def test_cache_hits_are_bit_identical(self, seed, merge, policy):
        """Hypothesis: for any workload/options draw, a cache-served
        compile equals a fresh uncached compile bit-for-bit."""
        g = random_dag(6, 150, 3, seed=seed)
        cache = PassCache()
        compile_ffcl(g, SMALL, merge=merge, policy=policy, pass_cache=cache)
        warm = compile_ffcl(
            g, SMALL, merge=merge, policy=policy, pass_cache=cache
        )
        fresh = compile_ffcl(g, SMALL, merge=merge, policy=policy)
        assert all(
            r.cache_hit for r in warm.pass_records if r.name != "ingest"
        )
        assert asdict(warm.metrics) == asdict(fresh.metrics)
        assert_programs_identical(warm.program, fresh.program)


# ----------------------------------------------------------------------
# Merge purity (the partition_unmerged wart fix)
# ----------------------------------------------------------------------
class TestMergePurity:
    def test_merge_leaves_input_partition_pristine(self):
        g = random_dag(10, 400, 3, seed=37)
        pre = preprocess(g)
        part = partition(pre.graph, SMALL.m)
        links_before = {
            mfg.uid: (
                sorted(c.uid for c in mfg.children),
                sorted(p.uid for p in mfg.parents),
            )
            for mfg in part.mfgs
        }
        merged = merge_partition(part)
        links_after = {
            mfg.uid: (
                sorted(c.uid for c in mfg.children),
                sorted(p.uid for p in mfg.parents),
            )
            for mfg in part.mfgs
        }
        assert links_before == links_after
        part.check_invariants()  # mutual links + coverage still hold
        merged.check_invariants()
        assert merged.num_mfgs <= part.num_mfgs

    def test_compile_result_partition_unmerged_reschedulable(self):
        g = random_dag(10, 400, 3, seed=41)
        result = compile_ffcl(g, SMALL)
        # The unmerged partition must still be a valid schedulable DAG.
        result.partition_unmerged.check_invariants()
        schedule = build_schedule(result.partition_unmerged, SMALL)
        assert schedule.makespan >= result.schedule.makespan

    def test_clone_partition_is_deep(self):
        g = random_dag(8, 250, 3, seed=43)
        pre = preprocess(g)
        part = partition(pre.graph, SMALL.m)
        clone = clone_partition(part)
        clone.check_invariants()
        assert {m.uid for m in clone.mfgs} == {m.uid for m in part.mfgs}
        for original, copied in zip(part.mfgs, clone.mfgs):
            assert original is not copied
            assert original.nodes_by_level == copied.nodes_by_level
            assert original.nodes_by_level is not copied.nodes_by_level
        # Mutating the clone never reaches the original.
        if clone.mfgs[0].children:
            clone.mfgs[0].children.clear()
            assert part.mfgs[0].children


# ----------------------------------------------------------------------
# Serving-layer integration: pipeline identity in ProgramCache keys
# ----------------------------------------------------------------------
class TestServeCachePipelineIdentity:
    def test_two_pipelines_never_collide(self):
        g = random_dag(8, 250, 3, seed=47)
        cache = ProgramCache(capacity=8)
        merged = cache.get_or_compile(g, SMALL)
        unmerged = cache.get_or_compile(g, SMALL, pipeline="no-merge")
        assert merged is not unmerged
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        # The two entries stay simultaneously resident and hit separately.
        assert cache.get_or_compile(g, SMALL) is merged
        assert cache.get_or_compile(g, SMALL, pipeline="no-merge") is unmerged
        assert cache.stats.hits == 2
        assert (
            merged.program.schedule.makespan
            <= unmerged.program.schedule.makespan
        )

    def test_pipeline_and_option_forms_share_one_entry(self):
        g = random_dag(8, 250, 3, seed=53)
        cache = ProgramCache(capacity=8)
        by_kwarg = cache.get_or_compile(g, SMALL, merge=False)
        by_name = cache.get_or_compile(g, SMALL, pipeline="no-merge")
        assert by_kwarg is by_name
        assert cache.stats.hits == 1

    def test_codegen_workers_not_part_of_key(self):
        g = random_dag(8, 250, 3, seed=59)
        cache = ProgramCache(capacity=8)
        a = cache.get_or_compile(g, SMALL, codegen_workers=1)
        b = cache.get_or_compile(g, SMALL, codegen_workers=4)
        assert a is b

    def test_pass_cache_shared_below_program_entries(self):
        g = random_dag(8, 250, 3, seed=61)
        cache = ProgramCache(capacity=8)
        cache.get_or_compile(g, SMALL)
        assert cache.pass_cache.stats.hits == 0
        cache.get_or_compile(g, SMALL, pipeline="no-merge")
        # The second pipeline shares the whole pre-processing + partition
        # prefix through the pass cache even though it missed here.
        assert cache.pass_cache.stats.hits >= 7

    def test_pass_cache_kwarg_rejected(self):
        g = random_dag(6, 100, 3, seed=67)
        cache = ProgramCache(capacity=8)
        with pytest.raises(ValueError, match="ProgramCache"):
            cache.get_or_compile(g, SMALL, pass_cache=PassCache())

    def test_clear_resets_owned_pass_cache(self):
        g = random_dag(6, 100, 3, seed=71)
        cache = ProgramCache(capacity=8)
        cache.get_or_compile(g, SMALL)
        assert len(cache.pass_cache) > 0
        cache.clear()
        assert len(cache.pass_cache) == 0

    def test_clear_spares_injected_shared_pass_cache(self):
        """clear() must not wipe a PassCache shared across caches."""
        g = random_dag(6, 100, 3, seed=79)
        shared = PassCache()
        cache = ProgramCache(capacity=8, pass_cache=shared)
        cache.get_or_compile(g, SMALL)
        entries_before = len(shared)
        assert entries_before > 0
        cache.clear()
        assert len(shared) == entries_before


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCLI:
    @pytest.fixture()
    def netlist(self, tmp_path):
        from repro.netlist.verilog_writer import write_verilog

        path = tmp_path / "block.v"
        path.write_text(write_verilog(random_dag(6, 120, 3, seed=73)))
        return str(path)

    def test_compile_explain_passes(self, capsys, netlist):
        from repro.cli import main

        assert main(
            ["compile", netlist, "--lpvs", "4", "--lpes", "8",
             "--explain-passes"]
        ) == 0
        out = capsys.readouterr().out
        assert "codegen" in out and "total" in out

    def test_compile_pipeline_flag(self, capsys, netlist):
        from repro.cli import main

        assert main(
            ["compile", netlist, "--lpvs", "4", "--lpes", "8",
             "--pipeline", "metrics-only", "--json"]
        ) == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert data["compute_instructions"] is None

    def test_passes_subcommand(self, capsys, netlist):
        from repro.cli import main

        assert main(
            ["passes", netlist, "--lpvs", "4", "--lpes", "8", "--json"]
        ) == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert [p["name"] for p in data["passes"]] == list(PIPELINES["paper"])

    def test_passes_list(self, capsys):
        from repro.cli import main

        assert main(["passes", "--list"]) == 0
        out = capsys.readouterr().out
        assert "paper" in out and "codegen" in out

    def test_passes_list_json(self, capsys):
        from repro.cli import main

        assert main(["passes", "--list", "--json"]) == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert data["pipelines"]["paper"] == list(PIPELINES["paper"])
        assert "codegen" in data["passes"]

    def test_passes_requires_netlist_without_list(self, capsys):
        from repro.cli import main

        assert main(["passes"]) == 2
