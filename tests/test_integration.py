"""Cross-module integration tests: the complete paper flow end to end."""

import numpy as np
import pytest

from repro.core import LPUConfig, PAPER_CONFIG, compile_ffcl
from repro.lpu import LPUSimulator, cross_check, random_stimulus
from repro.netlist import (
    parse_verilog,
    random_dag,
    write_verilog,
)
from repro.netlist.compose import compose_serial, merge_parallel
from repro.nullanet import (
    LayerSpec,
    TrainConfig,
    majority_dataset,
    run_nullanet_flow,
)


class TestVerilogToLPU:
    """Fig. 1 end to end: Verilog FFCL in, verified LPU execution out."""

    def test_full_flow_from_verilog(self):
        g0 = random_dag(7, 60, 3, seed=21)
        text = write_verilog(g0)
        g = parse_verilog(text)  # the paper's entry point
        res = compile_ffcl(g, LPUConfig(num_lpvs=4, lpes_per_lpv=4))
        res.partition.check_invariants()
        res.schedule.check_invariants()
        ok, _, _ = cross_check(res.program, seed=21)
        assert ok

    def test_metrics_traceability(self):
        g = random_dag(6, 50, 2, seed=5)
        res = compile_ffcl(g, LPUConfig(num_lpvs=4, lpes_per_lpv=4))
        m = res.metrics
        assert m.gates_source == 50
        assert m.mfgs_after_merge <= m.mfgs_before_merge
        assert m.mfg_reduction >= 1.0
        assert m.total_clock_cycles == m.makespan_macro_cycles * 6
        assert m.fps > 0
        assert str(m)


class TestNullaNetToLPU:
    """The paper's complete system: train a BNN, extract FFCL via NullaNet,
    compile for the LPU, and verify inference on the simulator."""

    def test_trained_network_runs_on_lpu(self):
        ds = majority_dataset(num_features=7)
        flow = run_nullanet_flow(
            ds,
            hidden=[LayerSpec(8, 5)],
            train_config=TrainConfig(epochs=10, seed=1),
            bits_per_class=2,
            seed=1,
        )
        res = compile_ffcl(
            flow.network_graph, LPUConfig(num_lpvs=4, lpes_per_lpv=8)
        )
        sim = LPUSimulator(res.program)

        # Classify 64 test samples in ONE simulator pass (bit-lane packing).
        x = ds.x_test[:64]
        stim = {}
        for i in range(7):
            word = np.uint64(0)
            for row in range(64):
                if x[row, i]:
                    word |= np.uint64(1) << np.uint64(row)
            stim[f"x{i}"] = np.array([word], dtype=np.uint64)
        result = sim.run(stim)

        # Reference: functional evaluation of the same graph.
        ref = flow.network_graph.evaluate(stim)
        for name in ref:
            assert np.array_equal(result.outputs[name], ref[name])

    def test_layerwise_compile_each_layer(self):
        ds = majority_dataset(num_features=6)
        flow = run_nullanet_flow(
            ds,
            hidden=[LayerSpec(6, 4)],
            train_config=TrainConfig(epochs=5, seed=0),
            bits_per_class=1,
            seed=0,
        )
        for layer_graph in flow.layer_graphs:
            res = compile_ffcl(
                layer_graph, LPUConfig(num_lpvs=3, lpes_per_lpv=6)
            )
            ok, _, _ = cross_check(res.program, seed=3)
            assert ok


class TestCompose:
    def test_compose_serial_semantics(self):
        g1 = random_dag(4, 20, 2, seed=1)
        # Build a consumer whose inputs are g1's output names.
        from repro.netlist import cells
        from repro.netlist.graph import LogicGraph

        g2 = LogicGraph("second")
        i0 = g2.add_input("y0")
        i1 = g2.add_input("y1")
        g2.set_output("z", g2.add_gate(cells.XOR, i0, i1))
        combined = compose_serial(g1, g2)
        stim = random_stimulus(g1, seed=7)
        mid = g1.evaluate(stim)
        expected = int(mid["y0"][0]) ^ int(mid["y1"][0])
        got = combined.evaluate(stim)["z"]
        assert int(got[0]) == expected

    def test_merge_parallel_shares_inputs(self):
        from repro.netlist import cells
        from repro.netlist.graph import LogicGraph

        a = LogicGraph("a")
        x0, x1 = a.add_input("x0"), a.add_input("x1")
        a.set_output("p", a.add_gate(cells.AND, x0, x1))
        b = LogicGraph("b")
        y0, y1 = b.add_input("x0"), b.add_input("x1")
        b.set_output("q", b.add_gate(cells.XOR, y0, y1))
        merged = merge_parallel([a, b], share_inputs=True)
        assert merged.num_inputs == 2
        assert merged.num_outputs == 2
        out = merged.evaluate_bits({"x0": 1, "x1": 1})
        assert out["p"] == 1 and out["q"] == 0

    def test_merge_parallel_rejects_duplicate_pos(self):
        a = random_dag(4, 10, 1, seed=4)
        b = random_dag(4, 10, 1, seed=4)
        with pytest.raises(ValueError):
            merge_parallel([a, b])

    def test_composed_graph_compiles(self):
        from repro.netlist import cells
        from repro.netlist.graph import LogicGraph

        g1 = random_dag(4, 25, 2, seed=5)
        g2 = LogicGraph("head")
        i0, i1 = g2.add_input("y0"), g2.add_input("y1")
        g2.set_output("z", g2.add_gate(cells.NAND, i0, i1))
        full = compose_serial(g1, g2)
        res = compile_ffcl(full, LPUConfig(num_lpvs=3, lpes_per_lpv=3))
        ok, _, _ = cross_check(res.program, seed=11)
        assert ok


class TestConfig:
    def test_paper_constants(self):
        assert PAPER_CONFIG.num_lpvs == 16
        assert PAPER_CONFIG.t_c == 6  # 1 compute + 5 switch stages
        assert PAPER_CONFIG.word_bits == 2 * PAPER_CONFIG.m
        assert PAPER_CONFIG.frequency_hz == pytest.approx(333e6)

    def test_fps_formula(self):
        cfg = LPUConfig()
        # FPS = f * 2m / (t_c * macro_cycles)
        assert cfg.fps(100) == pytest.approx(333e6 * 64 / (6 * 100))

    def test_validation(self):
        with pytest.raises(ValueError):
            LPUConfig(num_lpvs=0)
        with pytest.raises(ValueError):
            LPUConfig(lpes_per_lpv=0)
        with pytest.raises(ValueError):
            LPUConfig(frequency_hz=-1)
        with pytest.raises(ValueError):
            PAPER_CONFIG.fps(0)

    def test_describe(self):
        assert "16 LPVs" in PAPER_CONFIG.describe()


class TestBasisRestrictedCompile:
    """Tech-mapped compilation (heterogeneous-LPE future work, Section VII)."""

    @pytest.mark.parametrize("basis", [("nand",), ("nor",), ("and", "not")])
    def test_compile_in_restricted_basis(self, basis):
        g = random_dag(5, 30, 2, seed=8)
        res = compile_ffcl(
            g,
            LPUConfig(num_lpvs=3, lpes_per_lpv=4),
            basis=frozenset(basis),
        )
        ok, _, _ = cross_check(res.program, seed=8)
        assert ok
