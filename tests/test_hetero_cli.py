"""Tests for the future-work extensions (heterogeneous/multi-LPU) and CLI."""

import pytest

from repro.core import LPUConfig
from repro.core.hetero import (
    HeterogeneousLPU,
    MultiLPU,
    evaluate_heterogeneous,
    partition_heterogeneous,
    tapered_profile,
)
from repro.cli import main as cli_main
from repro.netlist import random_dag, write_verilog, write_bench
from repro.synth import preprocess


def balanced(seed=0, gates=60):
    return preprocess(random_dag(6, gates, 3, seed=seed)).graph


class TestHeterogeneousLPU:
    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousLPU(lpe_widths=())
        with pytest.raises(ValueError):
            HeterogeneousLPU(lpe_widths=(4, 0))

    def test_uniform_matches_homogeneous_partition(self):
        from repro.core import partition

        g = balanced(seed=1)
        uniform = HeterogeneousLPU(lpe_widths=(4,) * 6)
        hetero = partition_heterogeneous(g, uniform)
        homo = partition(g, 4)
        assert hetero.num_mfgs == homo.num_mfgs

    def test_per_level_widths_respected(self):
        g = balanced(seed=2)
        lpu = HeterogeneousLPU(lpe_widths=(8, 2, 8, 2))
        part = partition_heterogeneous(g, lpu)
        for mfg in part.mfgs:
            for level in mfg.levels():
                assert mfg.width(level) <= lpu.m_of_level(level)

    def test_evaluation_fields(self):
        g = balanced(seed=3)
        lpu = HeterogeneousLPU(lpe_widths=(6, 5, 4, 3))
        ev = evaluate_heterogeneous(g, lpu)
        assert ev.makespan >= 1
        assert ev.total_lpes == 18
        assert ev.fps > 0
        assert ev.fps_per_lpe == pytest.approx(ev.fps / 18)

    def test_tapered_profile(self):
        lpu = tapered_profile(8, 32, 0.5)
        assert lpu.lpe_widths[0] == 32
        assert lpu.lpe_widths[-1] == 16
        assert all(
            a >= b for a, b in zip(lpu.lpe_widths, lpu.lpe_widths[1:])
        )
        with pytest.raises(ValueError):
            tapered_profile(4, 8, 0.0)

    def test_tapering_trades_area_for_cycles(self):
        g = balanced(seed=4, gates=120)
        flat = evaluate_heterogeneous(g, tapered_profile(6, 8, 1.0))
        tapered = evaluate_heterogeneous(g, tapered_profile(6, 8, 0.5))
        assert tapered.total_lpes < flat.total_lpes
        assert tapered.makespan >= flat.makespan


class TestMultiLPU:
    BASE = LPUConfig(num_lpvs=4, lpes_per_lpv=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiLPU(self.BASE, 0, "parallel")
        with pytest.raises(ValueError):
            MultiLPU(self.BASE, 2, "ring")

    def test_parallel_scales_throughput(self):
        costs = [100, 100, 100, 100]
        one = MultiLPU(self.BASE, 1, "parallel").throughput_fps(costs)
        four = MultiLPU(self.BASE, 4, "parallel").throughput_fps(costs)
        assert four == pytest.approx(4 * one)

    def test_series_bound_by_bottleneck(self):
        costs = [300, 10, 10, 10]
        two = MultiLPU(self.BASE, 2, "series")
        stages = two.partition_stages(costs)
        assert len(stages) == 2
        fps = two.throughput_fps(costs)
        # The 300-cycle layer dominates one stage.
        assert fps == pytest.approx(self.BASE.fps(300))

    def test_series_balanced_split(self):
        costs = [50, 50, 50, 50]
        two = MultiLPU(self.BASE, 2, "series")
        assert two.throughput_fps(costs) == pytest.approx(self.BASE.fps(100))

    def test_total_lpes(self):
        assert MultiLPU(self.BASE, 3, "parallel").total_lpes() == 48


class TestCLI:
    def _write_netlist(self, tmp_path, fmt="v"):
        g = random_dag(5, 30, 2, seed=6)
        path = tmp_path / f"block.{fmt}"
        if fmt == "v":
            path.write_text(write_verilog(g))
        else:
            path.write_text(write_bench(g))
        return str(path)

    def test_compile_command(self, tmp_path, capsys):
        path = self._write_netlist(tmp_path)
        rc = cli_main(["compile", path, "--lpvs", "4", "--lpes", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mfgs_after_merge" in out

    def test_simulate_command_cross_checks(self, tmp_path, capsys):
        path = self._write_netlist(tmp_path)
        rc = cli_main(["simulate", path, "--lpvs", "4", "--lpes", "4",
                       "--seed", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cycle == functional: True" in out

    @pytest.mark.parametrize("engine", ["cycle", "trace"])
    def test_simulate_engine_flag(self, tmp_path, capsys, engine):
        path = self._write_netlist(tmp_path)
        rc = cli_main(["simulate", path, "--lpvs", "4", "--lpes", "4",
                       "--engine", engine])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"{engine} == functional: True" in out

    def test_compile_json_output(self, tmp_path, capsys):
        import json

        path = self._write_netlist(tmp_path)
        rc = cli_main(["compile", path, "--lpvs", "4", "--lpes", "4",
                       "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["mfgs_after_merge"] <= data["mfgs_before_merge"]
        assert data["fps"] > 0

    def test_report_json_output(self, tmp_path, capsys):
        import json

        path = self._write_netlist(tmp_path)
        rc = cli_main(["report", path, "--lpvs", "4", "--lpes", "4",
                       "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert {"partition", "schedule", "metrics", "program"} <= set(data)
        assert data["schedule"]["makespan_macro_cycles"] >= 1

    def test_throughput_command(self, tmp_path, capsys):
        path = self._write_netlist(tmp_path)
        rc = cli_main(["throughput", path, "--lpvs", "4", "--lpes", "4",
                       "--engine", "all", "--array-size", "4",
                       "--batches", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "samples/s" in out
        assert "trace" in out and "cycle" in out

    def test_throughput_json_output(self, tmp_path, capsys):
        import json

        path = self._write_netlist(tmp_path)
        rc = cli_main(["throughput", path, "--lpvs", "4", "--lpes", "4",
                       "--array-size", "2", "--batches", "2", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["samples_per_run"] == 128
        assert data["engines"]["trace"]["samples_per_second"] > 0

    def test_report_command(self, tmp_path, capsys):
        path = self._write_netlist(tmp_path)
        rc = cli_main(["report", path, "--lpvs", "4", "--lpes", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "partition:" in out and "schedule:" in out

    def test_bench_format_input(self, tmp_path, capsys):
        path = self._write_netlist(tmp_path, fmt="bench")
        rc = cli_main(["compile", path, "--lpvs", "4", "--lpes", "4"])
        assert rc == 0

    def test_no_merge_and_sequential_flags(self, tmp_path, capsys):
        path = self._write_netlist(tmp_path)
        rc = cli_main(
            ["compile", path, "--lpvs", "4", "--lpes", "4",
             "--no-merge", "--policy", "sequential"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "'policy': 'sequential'" in out or "sequential" in out
