"""Tests for the instruction set encoding and the code generator."""

import pytest

from repro.core import (
    LPEInstruction,
    LPUConfig,
    NOP,
    NOP_INSTRUCTION,
    PortSpec,
    SRC_CONST,
    SRC_INPUT,
    SRC_SNAPSHOT,
    SRC_SWITCH,
    compile_ffcl,
    decode_instruction,
    encode_instruction,
)
from repro.netlist import cells, random_dag, random_tree


class TestPortSpec:
    def test_valid_sources(self):
        for src in (SRC_SWITCH, SRC_SNAPSHOT, SRC_INPUT, SRC_CONST):
            PortSpec(src, 0)

    def test_invalid_source_rejected(self):
        with pytest.raises(ValueError):
            PortSpec("dram", 0)

    def test_index_bounds(self):
        PortSpec(SRC_SWITCH, 255)
        with pytest.raises(ValueError):
            PortSpec(SRC_SWITCH, 256)
        with pytest.raises(ValueError):
            PortSpec(SRC_SWITCH, -1)

    def test_const_index_restricted(self):
        PortSpec(SRC_CONST, 1)
        with pytest.raises(ValueError):
            PortSpec(SRC_CONST, 2)


class TestInstruction:
    def test_nop_defaults(self):
        assert NOP_INSTRUCTION.op == NOP
        assert not NOP_INSTRUCTION.valid
        assert NOP_INSTRUCTION.is_pure_nop

    def test_valid_nop_rejected(self):
        with pytest.raises(ValueError):
            LPEInstruction(op=NOP, valid=True)

    def test_invalid_compute_rejected(self):
        with pytest.raises(ValueError):
            LPEInstruction(op=cells.AND, valid=False)

    def test_latch_only_not_pure_nop(self):
        instr = LPEInstruction(
            op=NOP, a=PortSpec(SRC_SWITCH, 3, latch=True), valid=False
        )
        assert not instr.is_pure_nop

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            LPEInstruction(op="mux", valid=True)


class TestEncoding:
    def test_roundtrip_exhaustive_ports(self):
        for source in (SRC_SWITCH, SRC_SNAPSHOT, SRC_INPUT):
            for index in (0, 1, 17, 255):
                for latch in (False, True):
                    instr = LPEInstruction(
                        op=cells.XOR,
                        a=PortSpec(source, index, latch),
                        b=PortSpec(SRC_CONST, 1),
                        valid=True,
                    )
                    word = encode_instruction(instr)
                    assert 0 <= word < 2**32
                    back = decode_instruction(word)
                    assert back.op == instr.op
                    assert back.a == instr.a
                    assert back.b == instr.b
                    assert back.valid == instr.valid

    def test_roundtrip_all_ops(self):
        for op in sorted(cells.LPE_OPS):
            instr = LPEInstruction(
                op=op,
                a=PortSpec(SRC_SWITCH, 5),
                b=PortSpec(SRC_SWITCH, 6),
                valid=True,
            )
            assert decode_instruction(encode_instruction(instr)).op == op

    def test_nop_roundtrip(self):
        word = encode_instruction(NOP_INSTRUCTION)
        assert decode_instruction(word) == NOP_INSTRUCTION

    def test_out_of_range_word_rejected(self):
        with pytest.raises(ValueError):
            decode_instruction(1 << 33)


class TestCodegen:
    def compile(self, seed=0, n=4, m=4, gates=50, **kw):
        g = random_dag(6, gates, 3, seed=seed)
        cfg = LPUConfig(num_lpvs=n, lpes_per_lpv=m)
        return compile_ffcl(g, cfg, **kw)

    def test_program_shape(self):
        res = self.compile()
        prog = res.program
        assert prog is not None
        for lpv, entries in prog.queues.items():
            assert 0 <= lpv < 4
            for address, vec in entries.items():
                assert address >= 0
                assert len(vec) == 4

    def test_every_live_gate_has_an_instruction(self):
        res = self.compile(seed=1)
        prog = res.program
        computed = set()
        for entries in prog.queues.values():
            for vec in entries.values():
                for instr in vec:
                    if instr.valid and instr.node is not None:
                        computed.add(instr.node)
        balanced = res.balanced
        live_gates = {
            nid
            for nid in balanced.transitive_fanin(balanced.output_ids)
            if balanced.op_of(nid) in cells.LPE_OPS
        }
        assert live_gates <= computed

    def test_input_reads_reference_sources(self):
        res = self.compile(seed=2)
        prog = res.program
        balanced = res.balanced
        assert prog.input_reads, "PI-reading MFGs must hit the input buffer"
        for per_cycle in prog.input_reads.values():
            for node in per_cycle.values():
                assert balanced.op_of(node) in cells.SOURCE_OPS

    def test_po_capture_complete(self):
        res = self.compile(seed=3)
        prog = res.program
        for name, nid in res.balanced.outputs:
            assert (
                name in prog.po_buffer_keys
                or res.balanced.op_of(nid) in cells.SOURCE_OPS
            )

    def test_instruction_counts(self):
        res = self.compile(seed=4)
        prog = res.program
        assert prog.num_compute_instructions > 0
        assert prog.num_queue_entries > 0
        assert res.metrics.compute_instructions == prog.num_compute_instructions

    def test_instruction_at_idle_cell_is_nop(self):
        res = self.compile(seed=5)
        prog = res.program
        vec = prog.instruction_at(10**6, 0)  # far beyond the schedule
        assert all(i.is_pure_nop for i in vec)

    def test_deep_graph_uses_circulation(self):
        g = random_tree(64, seed=0)
        cfg = LPUConfig(num_lpvs=2, lpes_per_lpv=4)
        res = compile_ffcl(g, cfg)
        prog = res.program
        assert prog.circulation_reads, "wrapping must route through buffer"
        assert prog.buffer_writes

    def test_metrics_without_codegen(self):
        res = self.compile(seed=6, generate_code=False)
        assert res.program is None
        assert res.metrics.compute_instructions is None
        assert res.metrics.makespan_macro_cycles >= 1

    def test_peak_buffer_words_positive(self):
        res = self.compile(seed=7)
        assert res.program.peak_buffer_words >= res.balanced.num_outputs
