"""Tests for the explicit Beneš network construction and multicast routing
(the realizability witness for the paper's non-blocking switch)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lpu import BenesNetwork, apply_multicast, route_multicast


class TestBenesConstruction:
    @pytest.mark.parametrize("ports,stages", [(2, 1), (4, 3), (8, 5), (16, 7)])
    def test_stage_count(self, ports, stages):
        assert BenesNetwork(ports).num_stages == stages

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            BenesNetwork(6)
        with pytest.raises(ValueError):
            BenesNetwork(1)

    def test_identity_permutation(self):
        net = BenesNetwork(8)
        values = list(range(8))
        assert net.permute(list(range(8)), values) == values

    def test_reversal_permutation(self):
        net = BenesNetwork(8)
        perm = list(reversed(range(8)))
        out = net.permute(perm, list(range(8)))
        for i in range(8):
            assert out[perm[i]] == i

    @pytest.mark.parametrize("ports", [2, 4, 8, 16, 32])
    def test_all_rotations(self, ports):
        net = BenesNetwork(ports)
        values = list(range(ports))
        for shift in range(ports):
            perm = [(i + shift) % ports for i in range(ports)]
            out = net.permute(perm, values)
            for i in range(ports):
                assert out[perm[i]] == values[i]

    def test_incomplete_permutation_rejected(self):
        with pytest.raises(ValueError):
            BenesNetwork(4).route([0, 0, 1, 2])

    def test_settings_shape(self):
        net = BenesNetwork(8)
        settings_ = net.route([3, 1, 0, 2, 7, 5, 4, 6])
        assert len(settings_) == net.num_stages
        for stage in settings_:
            assert len(stage) == 4  # N/2 switches per stage


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100_000), log_ports=st.integers(1, 5))
def test_property_benes_routes_any_permutation(seed, log_ports):
    """The rearrangeable network realizes EVERY permutation — this is the
    non-blocking property the paper's 5-stage switch provides per hop."""
    ports = 1 << log_ports
    rng = np.random.default_rng(seed)
    perm = list(rng.permutation(ports))
    net = BenesNetwork(ports)
    out = net.permute(perm, list(range(ports)))
    for i in range(ports):
        assert out[perm[i]] == i


class TestMulticast:
    def test_plan_contiguous_copies(self):
        copies, perm = route_multicast(8, {0: [1, 3], 2: [0]})
        assert len(copies) == 8
        assert sorted(perm) == list(range(8))
        # The requested targets appear in (source, port) order.
        assert copies[:3] == [0, 0, 2]
        assert perm[:3] == [1, 3, 0]

    def test_duplicate_target_rejected(self):
        with pytest.raises(ValueError):
            route_multicast(4, {0: [1], 1: [1]})

    def test_too_many_targets_rejected(self):
        with pytest.raises(ValueError):
            route_multicast(2, {0: [0, 1], 1: [0]})

    @pytest.mark.parametrize("seed", range(8))
    def test_apply_multicast_delivers(self, seed):
        rng = np.random.default_rng(seed)
        ports = 8
        sources = list(range(4))
        assignment = {}
        remaining = list(range(ports))
        rng.shuffle(remaining)
        for src in sources:
            take = int(rng.integers(0, 3))
            assignment[src] = [remaining.pop() for _ in range(min(take, len(remaining)))]
        values = [f"v{s}" for s in range(4)]
        out = apply_multicast(ports, assignment, values)
        for src, targets in assignment.items():
            for t in targets:
                assert out[t] == values[src]
