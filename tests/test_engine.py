"""Tests for the pluggable execution-engine layer.

The load-bearing property: the vectorized :class:`TraceEngine` is
bit-identical to the cycle-accurate hardware model AND to functional
evaluation of the source netlist, for every workload generator, every
batch shape, and across repeated ``Session.run`` calls — with identical,
per-run (never cumulative) statistics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LPUConfig, compile_ffcl, lower_program
from repro.engine import (
    CycleAccurateEngine,
    ExecutionEngine,
    Session,
    TraceEngine,
    available_engines,
    create_engine,
)
from repro.lpu import cross_check, evaluate_graph, random_stimulus
from repro.models import (
    jsc_l_workload,
    jsc_m_workload,
    layer_block,
    lenet5_workload,
    mlpmixer_b4_workload,
    mlpmixer_s4_workload,
    nid_workload,
    vgg16_workload,
)
from repro.netlist import cells, random_dag, random_tree
from repro.netlist.graph import LogicGraph

SMALL = LPUConfig(num_lpvs=4, lpes_per_lpv=8)
TINY = LPUConfig(num_lpvs=2, lpes_per_lpv=4)


def assert_engines_agree(program, seed=0, array_size=3):
    """Every registered engine == functional reference, with identical
    statistics across all of them."""
    stim = random_stimulus(program.graph, array_size=array_size, seed=seed)
    reference = evaluate_graph(program.graph, stim)
    results = {
        name: create_engine(name, program).run(stim)
        for name in available_engines()
    }
    cycle = results["cycle"]
    for engine, result in results.items():
        assert set(result.outputs) == set(reference), engine
        for name, word in reference.items():
            assert np.array_equal(result.outputs[name], word), (engine, name)
        assert cycle.macro_cycles == result.macro_cycles, engine
        assert cycle.clock_cycles == result.clock_cycles, engine
        assert (
            cycle.compute_instructions_executed
            == result.compute_instructions_executed
        ), engine
        assert cycle.switch_routes == result.switch_routes, engine
        assert cycle.peak_buffer_words == result.peak_buffer_words, engine
        assert cycle.buffer_writes == result.buffer_writes, engine
    return cycle, results["trace"]


class TestRegistry:
    def test_all_engines_registered(self):
        assert available_engines() == [
            "cycle", "delta", "fused", "native", "trace"
        ]

    def test_create_engine(self):
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, TINY)
        assert isinstance(
            create_engine("cycle", res.program), CycleAccurateEngine
        )
        assert isinstance(create_engine("trace", res.program), TraceEngine)
        assert isinstance(create_engine("trace", res.program), ExecutionEngine)

    def test_unknown_engine_rejected(self):
        g = random_dag(4, 20, 1, seed=0)
        res = compile_ffcl(g, TINY)
        with pytest.raises(ValueError, match="unknown engine"):
            create_engine("warp", res.program)


class TestTraceLowering:
    def test_lowered_shape(self):
        g = random_dag(5, 40, 2, seed=4)
        res = compile_ffcl(g, LPUConfig(num_lpvs=3, lpes_per_lpv=3))
        trace = lower_program(res.program)
        assert trace.macro_cycles == res.schedule.makespan
        assert trace.num_levels <= trace.macro_cycles
        # One slot per constant, PI, and compute instruction.
        total_instrs = sum(l.num_instructions for l in trace.levels)
        assert trace.compute_instructions == total_instrs
        assert trace.num_slots == 2 + g.num_inputs + total_instrs
        assert trace.pi_slots.keys() == {
            g.input_name(nid) for nid in g.inputs
        }

    def test_levels_sorted_by_opcode(self):
        g = random_dag(5, 40, 2, seed=7)
        res = compile_ffcl(g, LPUConfig(num_lpvs=3, lpes_per_lpv=4))
        trace = lower_program(res.program)
        for level in trace.levels:
            covered = []
            for seg in level.segments:
                assert seg.end > seg.start
                covered.extend(range(seg.start, seg.end))
            assert covered == list(range(level.num_instructions))
            ops = [seg.op for seg in level.segments]
            assert ops == sorted(ops) and len(set(ops)) == len(ops)

    def test_operands_only_from_earlier_levels(self):
        """The levelization invariant that makes vectorization sound."""
        g = random_tree(64, seed=2)
        res = compile_ffcl(g, TINY)
        trace = lower_program(res.program)
        for level in trace.levels:
            assert int(level.a_index.max(initial=0)) < level.out_start
            assert int(level.b_index.max(initial=0)) < level.out_start

    def test_po_aliased_to_pi_and_const(self):
        g = LogicGraph()
        a = g.add_input("a")
        b = g.add_input("b")
        g.set_output("pass", a)
        g.set_output("zero", g.add_const(0))
        g.set_output("y", g.add_gate(cells.AND, a, b))
        res = compile_ffcl(g, TINY)
        trace = lower_program(res.program)
        assert set(trace.output_slots) == {"pass", "zero", "y"}
        cycle_res, trace_res = assert_engines_agree(res.program, seed=3)
        assert not trace_res.outputs["zero"].any()
        stim = random_stimulus(res.program.graph, array_size=3, seed=3)
        assert np.array_equal(trace_res.outputs["pass"], stim["a"])


class TestParityRandomGraphs:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags(self, seed):
        g = random_dag(6, 50, 3, seed=seed)
        res = compile_ffcl(g, LPUConfig(num_lpvs=4, lpes_per_lpv=4))
        assert_engines_agree(res.program, seed=seed)

    @pytest.mark.parametrize("n,m", [(1, 4), (2, 2), (3, 5), (8, 2)])
    def test_across_configs(self, n, m):
        g = random_dag(6, 60, 3, seed=42)
        res = compile_ffcl(g, LPUConfig(num_lpvs=n, lpes_per_lpv=m))
        assert_engines_agree(res.program, seed=n * 100 + m)

    @pytest.mark.parametrize("merge", [True, False])
    @pytest.mark.parametrize("policy", ["pipelined", "sequential"])
    def test_across_modes(self, merge, policy):
        g = random_dag(6, 45, 2, seed=9)
        res = compile_ffcl(
            g, LPUConfig(num_lpvs=3, lpes_per_lpv=3),
            merge=merge, policy=policy,
        )
        assert_engines_agree(res.program, seed=17)

    def test_deep_tree_with_circulation(self):
        g = random_tree(128, seed=1)  # depth 7 > n = 2
        res = compile_ffcl(g, TINY)
        assert res.metrics.circulations > 0
        assert_engines_agree(res.program, seed=5)


#: Every repro.models workload generator; blocks use the cheapest layer so
#: all seven models compile + execute in seconds.
MODEL_FACTORIES = [
    vgg16_workload,
    lenet5_workload,
    mlpmixer_s4_workload,
    mlpmixer_b4_workload,
    nid_workload,
    jsc_m_workload,
    jsc_l_workload,
]


class TestParityModelWorkloads:
    @pytest.mark.parametrize(
        "factory", MODEL_FACTORIES, ids=lambda f: f.__name__
    )
    def test_engines_match_functional(self, factory):
        model = factory()
        layer = min(model.layers, key=lambda l: (l.fan_in, l.num_neurons))
        block, _ = layer_block(layer, sample_neurons=2, seed=0)
        res = compile_ffcl(block, SMALL)
        # Multi-element batches AND repeated runs on the same Session.
        sessions = {
            name: Session(res.program, engine=name)
            for name in available_engines()
        }
        first_stats = None
        for batch, array_size in enumerate((1, 4)):
            stim = random_stimulus(
                res.program.graph, array_size=array_size, seed=batch
            )
            ref = evaluate_graph(res.program.graph, stim)
            outs = {
                name: session.run(stim)
                for name, session in sessions.items()
            }
            for engine, out in outs.items():
                for name, word in ref.items():
                    assert np.array_equal(
                        out.outputs[name], word
                    ), (engine, name)
            per_engine = {
                engine: (
                    out.macro_cycles,
                    out.compute_instructions_executed,
                    out.switch_routes,
                    out.peak_buffer_words,
                    out.buffer_writes,
                )
                for engine, out in outs.items()
            }
            stats = per_engine["cycle"]
            assert all(s == stats for s in per_engine.values())
            # Statistics are per-run: identical across repeated runs, not
            # accumulating.
            if first_stats is None:
                first_stats = stats
            else:
                assert stats == first_stats


class TestSession:
    def test_compiles_from_graph(self):
        g = random_dag(5, 30, 2, seed=2)
        s = Session(g, TINY)
        assert s.engine_name == "fused"  # the serving default
        assert s.compile_result is not None
        assert s.config == TINY
        result = s.run_random(array_size=2, seed=0)
        ref = evaluate_graph(s.graph, random_stimulus(s.graph, 2, seed=0))
        for name, word in ref.items():
            assert np.array_equal(result.outputs[name], word)

    def test_wraps_compiled_program(self):
        g = random_dag(5, 30, 2, seed=2)
        res = compile_ffcl(g, TINY)
        s = Session(res.program, engine="cycle")
        assert s.compile_result is None
        assert s.program is res.program
        assert s.run_random().macro_cycles == res.schedule.makespan

    def test_compile_kwargs_rejected_for_program(self):
        g = random_dag(5, 30, 2, seed=2)
        res = compile_ffcl(g, TINY)
        with pytest.raises(ValueError):
            Session(res.program, merge=False)

    def test_conflicting_config_rejected_for_program(self):
        g = random_dag(5, 30, 2, seed=2)
        res = compile_ffcl(g, TINY)
        with pytest.raises(ValueError, match="carries its own config"):
            Session(res.program, SMALL)
        # Restating the program's own config is harmless.
        assert Session(res.program, TINY).config == TINY

    def test_repeated_runs_amortize_one_program(self):
        g = random_dag(5, 30, 2, seed=3)
        s = Session(g, TINY)
        engine = s.engine
        for seed in range(3):
            s.run_random(seed=seed)
        assert s.engine is engine  # no recompilation/relowering
        assert s.runs_completed == 3

    def test_arbitrary_batch_shapes(self):
        g = random_dag(5, 30, 2, seed=4)
        s = Session(g, TINY)
        for shape in ((1,), (5,), (2, 3), (2, 2, 2)):
            rng = np.random.default_rng(1)
            stim = {
                g.input_name(nid): rng.integers(
                    0, 2**64, size=shape, dtype=np.uint64
                )
                for nid in g.inputs
            }
            result = s.run(stim)
            ref = evaluate_graph(g, stim)
            for name, word in ref.items():
                assert result.outputs[name].shape == shape
                assert np.array_equal(result.outputs[name], word)

    def test_mismatched_shapes_rejected(self):
        g = random_dag(4, 20, 1, seed=5)
        s = Session(g, TINY)
        stim = random_stimulus(g, array_size=2, seed=0)
        first = next(iter(stim))
        stim[first] = np.zeros(3, dtype=np.uint64)
        with pytest.raises(ValueError):
            s.run(stim)

    def test_missing_input_rejected(self):
        g = random_dag(4, 20, 1, seed=5)
        s = Session(g, TINY)
        with pytest.raises(KeyError):
            s.run({})

    def test_engine_instance_reuse_hook(self):
        """A prebuilt engine (sharing lowering artifacts) can be handed
        straight to a Session — the serving layer's reuse path."""
        g = random_dag(5, 30, 2, seed=6)
        res = compile_ffcl(g, TINY)
        engine = create_engine("trace", res.program)
        s = Session(res.program, engine=engine)
        assert s.engine is engine
        assert s.run_random(seed=1).macro_cycles == res.schedule.makespan

    def test_engine_instance_for_wrong_program_rejected(self):
        g = random_dag(5, 30, 2, seed=6)
        res = compile_ffcl(g, TINY)
        other = compile_ffcl(random_dag(5, 30, 2, seed=7), TINY)
        engine = create_engine("trace", other.program)
        with pytest.raises(ValueError, match="different"):
            Session(res.program, engine=engine)

    def test_cycle_engine_releases_batch_buffers(self):
        """After a run, the simulator must not pin that batch's arrays
        (stale per-batch buffers when batch shapes alternate)."""
        g = random_tree(128, seed=1)  # deep: exercises the output buffer
        res = compile_ffcl(g, TINY)
        s = Session(res.program, engine="cycle")
        result = s.run_random(array_size=64, seed=0)
        simulator = s.engine.simulator
        assert simulator.input_buffer.num_entries == 0
        assert simulator.input_buffer.words_stored() == 0
        assert simulator.output_buffer.live_words == 0
        for lpv in simulator.lpvs:
            for lpe in lpv.lpes:
                assert lpe.snapshot_a is None and lpe.snapshot_b is None
        # Statistics and outputs survive the release...
        assert result.peak_buffer_words > 0
        assert result.buffer_writes > 0
        assert result.outputs
        # ...and a smaller follow-up batch still runs correctly.
        small = s.run_random(array_size=1, seed=1)
        assert small.peak_buffer_words == result.peak_buffer_words

    def test_per_run_statistics_not_cumulative(self):
        g = random_tree(64, seed=3)
        for engine in available_engines():
            s = Session(g, TINY, engine=engine)
            runs = [s.run_random(array_size=2, seed=i) for i in range(3)]
            assert len({r.switch_routes for r in runs}) == 1, engine
            assert len({r.buffer_writes for r in runs}) == 1, engine
            assert len({r.compute_instructions_executed for r in runs}) == 1


class TestCrossCheckRouting:
    @pytest.mark.parametrize("engine", ["cycle", "trace"])
    def test_cross_check_engine_param(self, engine):
        g = random_dag(5, 35, 2, seed=6)
        res = compile_ffcl(g, TINY)
        ok, _, _ = cross_check(res.program, seed=6, engine=engine)
        assert ok

    def test_cross_check_default_is_cycle_accurate(self):
        g = random_dag(4, 20, 1, seed=7)
        res = compile_ffcl(g, TINY)
        ok, _, _ = cross_check(res.program, seed=7)
        assert ok


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 3000),
    n=st.integers(1, 6),
    m=st.integers(2, 6),
    gates=st.integers(5, 50),
)
def test_property_trace_engine_matches_functional(seed, n, m, gates):
    """For ANY random netlist and ANY LPU size, the vectorized trace engine
    equals functional evaluation — the fast path never trades correctness."""
    g = random_dag(5, gates, 2, seed=seed)
    res = compile_ffcl(g, LPUConfig(num_lpvs=n, lpes_per_lpv=m))
    ok, _, _ = cross_check(res.program, seed=seed, engine="trace")
    assert ok
