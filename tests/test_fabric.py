"""Tests for the distributed serving fabric (:mod:`repro.serve.fabric`)
and the :class:`~repro.serve.config.ServeConfig` API.

The load-bearing invariants:

* **wire fidelity** — a result decoded from either wire format (binary
  LPW frames or JSON) is bit-identical — outputs AND statistics — to a
  direct :meth:`Session.run`, for every model workload,
* **admission fairness** — per-client token buckets mean no client can
  push its sustained admission rate above its own bucket, and a greedy
  neighbor never starves a polite client (property-tested on a virtual
  clock),
* **store conformance** — every :class:`StoreBackend` (directory,
  memory, HTTP against a live store-only node) honours the same
  put/get/delete/keys contract,
* **fleet warm boot** — a second node wired to a warm node's HTTP store
  reaches ready-to-serve with zero compile passes,
* **config shim** — legacy serving kwargs still work (warning once),
  and mixing them with an explicit ``serving=`` is an error.
"""

import asyncio
import json
import threading
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifact import (
    ArtifactStore,
    ExecutableArtifact,
    HTTPStoreBackend,
    MemoryStoreBackend,
)
from repro.core import LPUConfig, compile_ffcl
from repro.engine import Session
from repro.engine.arena import SharedTableArena, fused_table_arrays
from repro.lpu import random_stimulus
from repro.lpu.simulator import SimulationResult
from repro.models import (
    jsc_l_workload,
    jsc_m_workload,
    layer_block,
    lenet5_workload,
    mlpmixer_b4_workload,
    mlpmixer_s4_workload,
    nid_workload,
    vgg16_workload,
)
from repro.netlist import random_dag
from repro.serve import InferenceServer, ServeConfig, naive_serve
from repro.serve.config import resolve_serving
from repro.serve.fabric import (
    AdmissionController,
    FabricClient,
    FabricConfig,
    FabricError,
    FabricNode,
    FabricRejected,
    TokenBucket,
    run_load_bench,
)
from repro.serve.fabric.httpio import (
    HTTPProtocolError,
    read_request,
    render_response,
    split_status,
)
from repro.serve.fabric.wire import (
    WireError,
    decode_json_request,
    decode_json_response,
    decode_request,
    decode_response,
    encode_json_response,
    encode_request,
    encode_response,
)

SMALL = LPUConfig(num_lpvs=4, lpes_per_lpv=8)

MODEL_FACTORIES = [
    vgg16_workload,
    lenet5_workload,
    mlpmixer_s4_workload,
    mlpmixer_b4_workload,
    nid_workload,
    jsc_m_workload,
    jsc_l_workload,
]

STAT_FIELDS = (
    "macro_cycles",
    "clock_cycles",
    "compute_instructions_executed",
    "switch_routes",
    "peak_buffer_words",
    "buffer_writes",
)


def assert_results_identical(expected, got):
    assert set(expected.outputs) == set(got.outputs)
    for name, words in expected.outputs.items():
        assert np.array_equal(words, got.outputs[name]), name
    for field in STAT_FIELDS:
        assert getattr(expected, field) == getattr(got, field), field


@pytest.fixture(scope="module")
def compiled():
    g = random_dag(7, 50, 4, seed=11)
    return compile_ffcl(g, SMALL)


@pytest.fixture(scope="module")
def node(compiled):
    with FabricNode(
        compiled.program,
        serving=ServeConfig(num_workers=2),
        fabric=FabricConfig(verify_artifacts=True),
    ) as running:
        yield running


# ----------------------------------------------------------------------
# HTTP codec
# ----------------------------------------------------------------------
def _parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestHTTPCodec:
    def test_parses_request_line_headers_and_body(self):
        request = _parse(
            b"POST /v1/infer?x=1 HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 4\r\n"
            b"\r\nabcd"
        )
        assert request.method == "POST"
        assert request.path == "/v1/infer"
        assert request.query == {"x": "1"}
        assert request.headers["content-type"] == "application/json"
        assert request.body == b"abcd"
        assert request.keep_alive  # HTTP/1.1 default

    def test_connection_close_disables_keep_alive(self):
        request = _parse(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    def test_eof_before_request_is_clean_none(self):
        assert _parse(b"") is None

    def test_garbage_request_line_raises(self):
        with pytest.raises(HTTPProtocolError):
            _parse(b"NOT-HTTP\r\n\r\n")

    def test_body_larger_than_cap_raises(self):
        with pytest.raises(HTTPProtocolError):
            _parse(
                b"POST / HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"
            )

    def test_percent_encoded_path_is_decoded(self):
        request = _parse(b"GET /v1/store/a%2Eb HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/store/a.b"

    def test_response_has_exact_content_length(self):
        raw = render_response(200, b"hello", content_type="text/plain")
        status, headers, body = split_status(raw)
        assert status == 200
        assert body == b"hello"
        assert headers["content-length"] == "5"


# ----------------------------------------------------------------------
# Wire formats
# ----------------------------------------------------------------------
class TestWireCodec:
    def _result(self):
        return SimulationResult(
            outputs={
                "y0": np.array([1, 2**63], dtype=np.uint64),
                "y1": np.array([0, 7], dtype=np.uint64),
            },
            macro_cycles=3,
            clock_cycles=18,
            compute_instructions_executed=57,
            switch_routes=12,
            peak_buffer_words=9,
            buffer_writes=21,
        )

    def test_request_roundtrip(self):
        inputs = {
            "a": np.array([5, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64),
            "b": np.array([0, 1], dtype=np.uint64),
        }
        back = decode_request(encode_request(inputs))
        assert set(back) == set(inputs)
        for name in inputs:
            assert np.array_equal(back[name], inputs[name])

    def test_response_roundtrip_with_stats_and_latency(self):
        result = self._result()
        latency = {"total_ms": 1.25, "service_ms": 1.0}
        back, lat = decode_response(encode_response(result, latency))
        assert_results_identical(result, back)
        assert lat == latency

    def test_json_roundtrips_are_exact(self):
        inputs = {"a": np.array([2**64 - 1], dtype=np.uint64)}
        body = json.dumps(
            {"inputs": {"a": [2**64 - 1]}}
        ).encode()
        back = decode_json_request(body)
        assert np.array_equal(back["a"], inputs["a"])
        result = self._result()
        decoded, _ = decode_json_response(
            encode_json_response(result, {})
        )
        assert_results_identical(result, decoded)

    def test_bad_magic_rejected(self):
        with pytest.raises(WireError):
            decode_request(b"XXXX" + b"\x00" * 16)

    def test_truncated_payload_rejected(self):
        frame = encode_request(
            {"a": np.array([1, 2, 3], dtype=np.uint64)}
        )
        with pytest.raises(WireError):
            decode_request(frame[:-8])

    def test_mismatched_word_counts_rejected(self):
        with pytest.raises(WireError):
            encode_request(
                {
                    "a": np.array([1], dtype=np.uint64),
                    "b": np.array([1, 2], dtype=np.uint64),
                }
            )


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class VirtualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.try_acquire()

    def test_tokens_capped_at_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(1000.0)
        assert bucket.tokens == pytest.approx(2.0)

    @given(
        rate=st.floats(0.5, 50.0),
        burst=st.integers(1, 10),
        steps=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_rate_limit_upper_bound(self, rate, burst, steps):
        """Admissions over any schedule never exceed burst + rate*T."""
        clock = VirtualClock()
        bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
        admitted = 0
        for dt in steps:
            clock.advance(dt)
            if bucket.try_acquire():
                admitted += 1
        elapsed = sum(steps)
        assert admitted <= burst + rate * elapsed + 1e-6


class TestAdmissionController:
    def test_inflight_cap_saturates_and_releases(self):
        controller = AdmissionController(max_inflight=2)
        assert controller.admit("a").admitted
        assert controller.admit("b").admitted
        rejected = controller.admit("c")
        assert not rejected.admitted
        assert rejected.reason == "saturated"
        controller.release()
        assert controller.admit("c").admitted
        stats = controller.as_dict()
        assert stats["rejected_saturated"] == 1
        assert stats["peak_inflight"] == 2

    def test_throttle_reports_retry_after(self):
        clock = VirtualClock()
        controller = AdmissionController(
            max_inflight=64, client_rate=1.0, client_burst=1,
            clock=clock,
        )
        assert controller.admit("c").admitted
        controller.release()
        decision = controller.admit("c")
        assert not decision.admitted
        assert decision.reason == "throttled"
        assert decision.retry_after == pytest.approx(1.0)

    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(0, 3),            # which client attempts
                st.floats(0.0, 0.2),          # time since last attempt
            ),
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_no_client_starves(self, schedule):
        """A polite client attempting once per token period is always
        admitted, no matter how aggressively the others hammer."""
        clock = VirtualClock()
        controller = AdmissionController(
            max_inflight=10_000, client_rate=10.0, client_burst=1,
            clock=clock,
        )
        # The adversarial interleaving from hypothesis...
        for client, dt in schedule:
            clock.advance(dt)
            decision = controller.admit(f"noise-{client}")
            if decision.admitted:
                controller.release()
            # ...never affects the polite client's own bucket (one
            # token period plus an epsilon for float refill rounding):
            clock.advance(0.1 + 1e-6)
            polite = controller.admit("polite")
            assert polite.admitted
            controller.release()


# ----------------------------------------------------------------------
# Store backend conformance (directory / memory / HTTP)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def store_node():
    """A store-only fabric node (no engine) backing the HTTP backend."""
    with FabricNode(store=MemoryStoreBackend()) as running:
        yield running


def _backends(tmp_path, store_node):
    return {
        "directory": ArtifactStore(str(tmp_path / "store")),
        "memory": MemoryStoreBackend(),
        "http": HTTPStoreBackend(store_node.store_url),
    }


class TestStoreBackendConformance:
    @pytest.fixture(params=["directory", "memory", "http"])
    def backend(self, request, tmp_path, store_node):
        return _backends(tmp_path, store_node)[request.param]

    def test_put_get_delete_keys_contract(self, backend):
        key = "k" * 16
        assert backend.get_bytes(key, suffix=".bin") is None
        assert not backend.contains(key, suffix=".bin")
        backend.put_bytes(key, b"payload", suffix=".bin")
        assert backend.get_bytes(key, suffix=".bin") == b"payload"
        assert backend.contains(key, suffix=".bin")
        assert key in backend.keys(".bin")
        # Overwrite is last-write-wins.
        backend.put_bytes(key, b"payload2", suffix=".bin")
        assert backend.get_bytes(key, suffix=".bin") == b"payload2"
        assert backend.delete(key, suffix=".bin")
        assert not backend.delete(key, suffix=".bin")
        assert backend.get_bytes(key, suffix=".bin") is None

    def test_suffixes_are_distinct_namespaces(self, backend):
        backend.put_bytes("samekey", b"a", suffix=".a")
        backend.put_bytes("samekey", b"b", suffix=".b")
        assert backend.get_bytes("samekey", suffix=".a") == b"a"
        assert backend.get_bytes("samekey", suffix=".b") == b"b"
        backend.delete("samekey", suffix=".a")
        backend.delete("samekey", suffix=".b")

    def test_stats_count_hits_and_misses(self, backend):
        before = backend.stats.as_dict()
        backend.put_bytes("statkey", b"x", suffix=".s")
        backend.get_bytes("statkey", suffix=".s")
        backend.get_bytes("absent", suffix=".s")
        after = backend.stats.as_dict()
        assert after["writes"] == before["writes"] + 1
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] >= before["misses"] + 1
        backend.delete("statkey", suffix=".s")


class TestHTTPStoreBackend:
    def test_unreachable_server_degrades_to_misses(self):
        backend = HTTPStoreBackend(
            "http://127.0.0.1:9", timeout=0.2
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert backend.get_bytes("k", suffix=".x") is None
            backend.put_bytes("k", b"v", suffix=".x")
            assert backend.keys(".x") == []
        assert backend.transport_errors > 0


# ----------------------------------------------------------------------
# ServeConfig and the deprecation shim
# ----------------------------------------------------------------------
class TestServeConfig:
    def test_defaults_and_replace(self):
        config = ServeConfig()
        assert config.num_workers == 1
        tuned = config.replace(num_workers=3, engine="trace")
        assert tuned.num_workers == 3
        assert tuned.engine == "trace"
        assert config.num_workers == 1  # frozen original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(num_workers=0)
        with pytest.raises(ValueError):
            ServeConfig(backend="carrier-pigeon")

    def test_legacy_kwargs_warn_once_and_still_work(self, monkeypatch):
        import repro.serve.config as config_module

        monkeypatch.setattr(config_module, "_warned_legacy", False)
        with pytest.warns(DeprecationWarning):
            serving, options = resolve_serving(
                None, {"num_workers": 2, "merge": False}
            )
        assert serving.num_workers == 2
        assert options == {"merge": False}
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second use must NOT warn
            serving, _ = resolve_serving(None, {"num_workers": 3})
        assert serving.num_workers == 3

    def test_mixing_serving_with_legacy_kwargs_raises(self):
        with pytest.raises(ValueError, match="legacy"):
            resolve_serving(ServeConfig(), {"num_workers": 2})

    def test_explicit_serving_passes_through(self):
        serving = ServeConfig(num_workers=4)
        resolved, options = resolve_serving(serving, {"merge": True})
        assert resolved is serving
        assert options == {"merge": True}

    def test_server_accepts_serving_object(self, compiled):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            server = InferenceServer(
                compiled.program,
                serving=ServeConfig(num_workers=1, max_wait_ms=0.5),
            )
        try:
            stim = random_stimulus(
                compiled.program.graph, array_size=1, seed=0
            )
            expected = Session(compiled.program).run(stim)
            assert_results_identical(expected, server.infer(stim))
        finally:
            server.close()


# ----------------------------------------------------------------------
# The fabric node end to end
# ----------------------------------------------------------------------
class TestFabricEndToEnd:
    def test_binary_and_json_wire_bit_identical(self, compiled, node):
        graph = compiled.program.graph
        session = Session(compiled.program)
        for seed in range(3):
            stim = random_stimulus(
                graph, array_size=1 + seed % 3, seed=seed
            )
            expected = session.run(stim)
            with FabricClient(node.url, wire="binary") as client:
                assert_results_identical(expected, client.infer(stim))
                assert client.last_latency["total_ms"] >= 0.0
                assert (
                    client.last_latency["service_ms"]
                    <= client.last_latency["total_ms"]
                )
            with FabricClient(node.url, wire="json") as client:
                assert_results_identical(expected, client.infer(stim))

    def test_health_and_stats(self, node):
        with FabricClient(node.url) as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["role"] == "serve"
            assert health["ready"] is True
            stats = client.stats()
            assert stats["admission"]["admitted"] >= 1
            assert "scheduler" in stats["server"]
            assert stats["draining"] is False
            assert stats["deadline_504"] == 0

    def test_liveness_vs_readiness_endpoints(self, node):
        with FabricClient(node.url) as client:
            status, _, _ = client._request("GET", "/v1/health/live")
            assert status == 200
            status, _, _ = client._request("GET", "/v1/health/ready")
            assert status == 200

    def test_unknown_route_404(self, node):
        with FabricClient(node.url) as client:
            status, _, _ = client._request("GET", "/nope")
            assert status == 404

    def test_malformed_inference_body_400(self, node):
        with FabricClient(node.url) as client:
            status, _, _ = client._request(
                "POST", "/v1/infer", body=b"{broken",
                headers={"Content-Type": "application/json"},
            )
            assert status == 400

    def test_unknown_input_name_is_client_error(self, node):
        with FabricClient(node.url) as client:
            with pytest.raises(FabricError):
                client.infer(
                    {"no_such_pi": np.array([1], dtype=np.uint64)}
                )

    def test_store_endpoint_roundtrip(self, node):
        with FabricClient(node.url) as client:
            status, _, _ = client._request(
                "PUT", "/v1/store/deadbeef.bin", body=b"blob"
            )
            assert status == 204
            status, _, data = client._request(
                "GET", "/v1/store/deadbeef.bin"
            )
            assert (status, data) == (200, b"blob")
            status, _, data = client._request(
                "GET", "/v1/store?suffix=.bin"
            )
            assert "deadbeef" in json.loads(data)["keys"]
            status, _, _ = client._request(
                "DELETE", "/v1/store/deadbeef.bin"
            )
            assert status == 204

    def test_corrupt_artifact_upload_rejected_422(self, node):
        # node has verify_artifacts=True: garbage .lpa must not land.
        with FabricClient(node.url) as client:
            status, _, data = client._request(
                "PUT", "/v1/store/bad.lpa", body=b"not an artifact"
            )
            assert status == 422
            status, _, _ = client._request("GET", "/v1/store/bad.lpa")
            assert status == 404

    def test_genuine_artifact_upload_accepted(self, compiled, node):
        artifact = compiled.to_artifact(probe_words=2)
        with FabricClient(node.url) as client:
            status, _, _ = client._request(
                "PUT", "/v1/store/good.lpa", body=artifact.to_bytes()
            )
            assert status == 204
            status, _, data = client._request(
                "GET", "/v1/store/good.lpa"
            )
            assert status == 200
            assert (
                ExecutableArtifact.from_bytes(data).fingerprint
                == artifact.fingerprint
            )

    def test_throttled_client_gets_429_with_retry_after(self, compiled):
        with FabricNode(
            compiled.program,
            serving=ServeConfig(),
            fabric=FabricConfig(client_rate=0.5, client_burst=1),
        ) as throttling:
            stim = random_stimulus(
                compiled.program.graph, array_size=1, seed=0
            )
            with FabricClient(
                throttling.url, client_id="greedy"
            ) as client:
                client.infer(stim)
                with pytest.raises(FabricRejected) as info:
                    client.infer(stim)
                assert info.value.status == 429
                assert info.value.retry_after > 0

    def test_concurrent_clients_all_bit_identical(self, compiled, node):
        graph = compiled.program.graph
        session = Session(compiled.program)
        stimuli = [
            random_stimulus(graph, array_size=1, seed=100 + i)
            for i in range(12)
        ]
        expected = [session.run(stim) for stim in stimuli]
        failures = []

        def lane(lane_id):
            try:
                with FabricClient(
                    node.url, client_id=f"t{lane_id}"
                ) as client:
                    for i in range(lane_id, len(stimuli), 3):
                        assert_results_identical(
                            expected[i], client.infer(stimuli[i])
                        )
            except Exception as exc:  # noqa: BLE001 - collected below
                failures.append(exc)

        threads = [
            threading.Thread(target=lane, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []


class TestModelWorkloadsOverHTTP:
    @pytest.mark.parametrize(
        "factory", MODEL_FACTORIES, ids=lambda f: f.__name__
    )
    def test_http_roundtrip_bit_identical(self, factory):
        model = factory()
        layer = min(
            model.layers, key=lambda l: (l.fan_in, l.num_neurons)
        )
        block, _ = layer_block(layer, sample_neurons=2, seed=0)
        result = compile_ffcl(block, SMALL)
        session = Session(result.program)
        with FabricNode(
            result.program, serving=ServeConfig()
        ) as serving_node:
            with FabricClient(serving_node.url) as client:
                for seed, array_size in ((0, 1), (1, 4)):
                    stim = random_stimulus(
                        block, array_size=array_size, seed=seed
                    )
                    assert_results_identical(
                        session.run(stim), client.infer(stim)
                    )


# ----------------------------------------------------------------------
# Fleet warm boot: node B compiles nothing
# ----------------------------------------------------------------------
class TestWarmFleetBoot:
    def test_second_node_boots_from_http_store_with_zero_compiles(
        self, compiled
    ):
        graph = compiled.program.graph
        # The warm node boots from the GRAPH so its compile lands in the
        # store tier (already-compiled Program sources never re-package).
        with FabricNode(graph, SMALL, serving=ServeConfig()) as warm:
            warm_cache = warm.stats()["server"]["cache"]
            assert warm_cache["disk_stores"] >= 1
            backend = HTTPStoreBackend(warm.store_url)
            with FabricNode(
                graph,
                SMALL,
                serving=ServeConfig(store=backend),
            ) as cold:
                cold_cache = cold.stats()["server"]["cache"]
                assert cold_cache["disk_hits"] >= 1
                assert cold_cache["disk_misses"] == 0
                stim = random_stimulus(graph, array_size=2, seed=5)
                expected = Session(compiled.program).run(stim)
                with FabricClient(cold.url) as client:
                    assert_results_identical(
                        expected, client.infer(stim)
                    )


# ----------------------------------------------------------------------
# Shared-table arena
# ----------------------------------------------------------------------
class TestSharedTableArena:
    def test_publish_attach_rebind_roundtrip(self, compiled):
        artifact = compiled.to_artifact()
        fused = artifact.fused_program()
        tables = fused_table_arrays(fused)
        assert tables  # at least one level of index tables
        arena = SharedTableArena.publish(fused)
        try:
            attached = SharedTableArena.attach(arena.handle())
            try:
                views = dict(attached.arrays())
                for name, expected in tables:
                    assert np.array_equal(views[name], expected)
                    assert not views[name].flags.writeable
            finally:
                attached.close()
        finally:
            arena.close()

    def test_rebind_refuses_mismatched_program(self, compiled):
        g2 = random_dag(7, 50, 4, seed=99)
        other = compile_ffcl(g2, SMALL)
        arena = SharedTableArena.publish(
            compiled.to_artifact().fused_program()
        )
        try:
            attached = SharedTableArena.attach(arena.handle())
            try:
                mismatched = other.to_artifact().fused_program()
                with pytest.raises(ValueError):
                    attached.rebind(mismatched)
            finally:
                attached.close()
        finally:
            arena.close()

    def test_share_tables_serving_is_bit_identical(self, compiled):
        stimuli = [
            random_stimulus(
                compiled.program.graph, array_size=1, seed=i
            )
            for i in range(6)
        ]
        expected = naive_serve(
            compiled.program, stimuli, serving=ServeConfig()
        )
        server = InferenceServer(
            compiled.program,
            serving=ServeConfig(
                num_workers=2, backend="spawn", share_tables=True
            ),
        )
        try:
            assert server.pool.stats()["shared_table_bytes"] > 0
            got = server.map(stimuli)
        finally:
            server.close()
        for want, have in zip(expected, got):
            assert_results_identical(want, have)


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------
class TestLoadBench:
    def test_closed_loop_report_and_bit_identity(self, compiled):
        report = run_load_bench(
            compiled.program,
            serving=ServeConfig(num_workers=2),
            requests=12,
            clients=2,
            array_size=1,
            baseline=True,
            verify=True,
        )
        assert report["bit_identical"] is True
        fabric = report["fabric"]
        assert fabric["requests_per_second"] > 0
        assert (
            0
            < fabric["latency_p50_ms"]
            <= fabric["latency_p99_ms"]
        )
        assert report["speedup_vs_single_process"] > 0
        assert report["node"]["admission"]["admitted"] >= 12

    def test_open_loop_requires_rate(self, compiled):
        with pytest.raises(ValueError):
            run_load_bench(
                compiled.program, mode="open", target_rps=None
            )

    def test_open_loop_runs(self, compiled):
        report = run_load_bench(
            compiled.program,
            serving=ServeConfig(),
            requests=6,
            clients=2,
            mode="open",
            target_rps=500.0,
            baseline=False,
            verify=True,
        )
        assert report["bit_identical"] is True
        assert report["baseline_single_process"] is None
