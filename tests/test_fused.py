"""Tests for liveness-driven fusion: the register allocator, the fused
engine, its generated kernels and workspaces, the process-wide caches,
and the artifact round-trip of renamed tables.

The load-bearing properties:

* the fused engine is bit-identical (outputs AND statistics) to the
  trace and cycle engines for every graph, batch shape, and kernel
  choice (vector vs rowwise),
* the register file is strictly smaller than the trace value table on
  deep programs (the whole point of the renaming),
* lowerings and fusions are shared process-wide — including under
  thread races — and artifact-embedded tables round-trip exactly.
"""

import gc
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifact import ExecutableArtifact
from repro.core import (
    LPUConfig,
    clear_fusion_cache,
    clear_lowering_cache,
    compile_ffcl,
    fuse_trace,
    fusion_cache_stats,
    lower_program,
    lowering_cache_stats,
)
from repro.core.liveness import adopt_fusion
from repro.engine import FusedEngine, Session, create_engine
from repro.engine.fused import ROWWISE_MIN_WORDS, ensure_kernels
from repro.lpu import evaluate_graph, random_stimulus
from repro.netlist import cells, random_dag, random_tree
from repro.netlist.graph import LogicGraph

SMALL = LPUConfig(num_lpvs=4, lpes_per_lpv=8)
TINY = LPUConfig(num_lpvs=2, lpes_per_lpv=4)


def _assert_fused_matches(program, stim):
    """Fused == trace == functional, outputs and statistics."""
    reference = evaluate_graph(program.graph, stim)
    fused = create_engine("fused", program).run(stim)
    trace = create_engine("trace", program).run(stim)
    for name, word in reference.items():
        assert np.array_equal(fused.outputs[name], word), name
    assert fused.macro_cycles == trace.macro_cycles
    assert fused.clock_cycles == trace.clock_cycles
    assert (
        fused.compute_instructions_executed
        == trace.compute_instructions_executed
    )
    assert fused.switch_routes == trace.switch_routes
    assert fused.peak_buffer_words == trace.peak_buffer_words
    assert fused.buffer_writes == trace.buffer_writes


# ----------------------------------------------------------------------
class TestLivenessAllocation:
    def test_register_file_smaller_than_slot_table(self):
        g = random_tree(256, seed=3)  # deep: long levels, short lifetimes
        res = compile_ffcl(g, TINY)
        trace = lower_program(res.program)
        fused = fuse_trace(trace)
        assert fused.num_regs < trace.num_slots
        assert fused.num_slots == trace.num_slots

    def test_constants_and_pi_numbering_pinned(self):
        g = random_dag(5, 40, 2, seed=4)
        res = compile_ffcl(g, SMALL)
        fused = fuse_trace(lower_program(res.program))
        assert sorted(fused.pi_regs.values()) == list(
            range(2, 2 + len(fused.pi_regs))
        )
        for level in fused.levels:
            # Constants are never overwritten (register 0 also feeds the
            # single-input lanes of every fused b gather).
            assert 0 not in level.out_index
            assert 1 not in level.out_index

    def test_level_outputs_pairwise_distinct_and_bounded(self):
        g = random_dag(6, 70, 3, seed=9)
        res = compile_ffcl(g, SMALL)
        fused = fuse_trace(lower_program(res.program))
        for level in fused.levels:
            out = level.out_index
            assert len(set(out.tolist())) == len(out)
            for array in (level.a_index, level.b_index, out):
                assert int(array.min(initial=0)) >= 0
                assert int(array.max(initial=0)) < fused.num_regs

    def test_buf_instructions_copy_propagated_away(self):
        # A shallow input feeding a deep chain: the balance stage must
        # insert BUF word-moves to carry it down the levels.
        g = LogicGraph()
        a = g.add_input("a")
        b = g.add_input("b")
        c = g.add_input("c")
        x = g.add_gate(cells.AND, a, b)
        for i in range(6):
            x = g.add_gate(cells.AND if i % 2 else cells.OR, x, a)
        g.set_output("y", g.add_gate(cells.XOR, x, c))
        res = compile_ffcl(g, TINY)
        trace = lower_program(res.program)
        fused = fuse_trace(trace)
        trace_ops = {
            seg.op for level in trace.levels for seg in level.segments
        }
        fused_ops = {
            seg.op for level in fused.levels for seg in level.segments
        }
        assert cells.BUF in trace_ops  # the workload does move words
        assert cells.BUF not in fused_ops
        trace_instrs = sum(lv.num_instructions for lv in trace.levels)
        fused_instrs = sum(lv.num_instructions for lv in fused.levels)
        assert fused_instrs < trace_instrs
        # Statistics still report the *architectural* instruction count.
        stim = random_stimulus(res.program.graph, array_size=2, seed=0)
        result = create_engine("fused", res.program).run(stim)
        assert result.compute_instructions_executed == trace_instrs

    def test_allocation_deterministic(self):
        g = random_dag(6, 60, 3, seed=12)
        res = compile_ffcl(g, SMALL)
        trace = lower_program(res.program)
        one = fuse_trace(trace, cache=False)
        two = fuse_trace(trace, cache=False)
        assert one is not two
        assert one.num_regs == two.num_regs
        assert one.output_regs == two.output_regs
        for a, b in zip(one.levels, two.levels):
            assert np.array_equal(a.a_index, b.a_index)
            assert np.array_equal(a.b_index, b.b_index)
            assert np.array_equal(a.out_index, b.out_index)
            assert a.segments == b.segments

    def test_fused_segments_cover_level_sorted_by_op(self):
        g = random_dag(6, 80, 3, seed=5)
        res = compile_ffcl(g, SMALL)
        fused = fuse_trace(lower_program(res.program))
        for level in fused.levels:
            covered = []
            for seg in level.segments:
                assert seg.end > seg.start
                covered.extend(range(seg.start, seg.end))
            assert covered == list(range(level.num_instructions))
            ops = [seg.op for seg in level.segments]
            assert ops == sorted(ops) and len(set(ops)) == len(ops)


# ----------------------------------------------------------------------
class TestFusionCache:
    def test_fusions_shared_per_trace(self):
        clear_fusion_cache()
        g = random_dag(5, 30, 2, seed=2)
        res = compile_ffcl(g, TINY)
        trace = lower_program(res.program)
        one = fuse_trace(trace)
        two = fuse_trace(trace)
        assert one is two
        stats = fusion_cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_adopt_sweeps_dead_entries(self):
        """Artifact-only processes never hit the fuse_trace miss path,
        so adoption itself must purge dead weak references."""
        clear_fusion_cache()
        clear_lowering_cache()
        for seed in range(4):
            res = compile_ffcl(random_dag(4, 20, 1, seed=seed), TINY)
            art = ExecutableArtifact.from_bytes(
                ExecutableArtifact.from_compile(res).to_bytes()
            )
            del res, art  # retire the workload entirely
        gc.collect()
        res = compile_ffcl(random_dag(4, 20, 1, seed=99), TINY)
        keep = ExecutableArtifact.from_bytes(
            ExecutableArtifact.from_compile(res).to_bytes()
        )
        assert fusion_cache_stats()["live_entries"] <= 2
        assert lowering_cache_stats()["live_entries"] <= 2
        assert keep.fused is not None

    def test_adopt_prefers_live_canonical(self):
        clear_fusion_cache()
        g = random_dag(5, 30, 2, seed=7)
        res = compile_ffcl(g, TINY)
        trace = lower_program(res.program)
        canonical = fuse_trace(trace)
        foreign = fuse_trace(trace, cache=False)
        assert adopt_fusion(foreign) is canonical

    def test_engines_share_tables_and_kernels(self):
        g = random_dag(5, 40, 2, seed=8)
        res = compile_ffcl(g, TINY)
        one = create_engine("fused", res.program)
        two = create_engine("fused", res.program)
        assert one.fused is two.fused
        assert one._kernels is two._kernels
        assert ensure_kernels(one.fused) is one._kernels


# ----------------------------------------------------------------------
class TestLoweringCacheConcurrency:
    def test_threaded_lower_race_yields_one_lowering(self):
        clear_lowering_cache()
        g = random_dag(6, 60, 3, seed=21)
        res = compile_ffcl(g, SMALL)
        program = res.program
        workers = 8
        barrier = threading.Barrier(workers)
        results = [None] * workers
        errors = []

        def race(index):
            try:
                barrier.wait()
                results[index] = lower_program(program)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=race, args=(i,)) for i in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(r is results[0] for r in results)
        stats = lowering_cache_stats()
        # Racing misses may lower twice, but every call resolves to one
        # shared artifact and every lookup is accounted for.
        assert stats["hits"] + stats["misses"] == workers
        assert stats["misses"] >= 1
        assert stats["live_entries"] == 1

    def test_miss_path_sweeps_dead_entries(self):
        clear_lowering_cache()
        for seed in range(4):
            res = compile_ffcl(random_dag(4, 20, 1, seed=seed), TINY)
            lower_program(res.program)
            del res  # drop the only strong reference to the lowering
        gc.collect()
        res = compile_ffcl(random_dag(4, 20, 1, seed=99), TINY)
        keep = lower_program(res.program)
        # The fresh miss swept the dead weak references out.
        assert lowering_cache_stats()["live_entries"] == 1
        assert keep.program is res.program


# ----------------------------------------------------------------------
class TestFusedEngine:
    @pytest.mark.parametrize("seed", range(5))
    def test_parity_random_dags(self, seed):
        g = random_dag(6, 50, 3, seed=seed)
        res = compile_ffcl(g, SMALL)
        for array_size in (1, 4):
            stim = random_stimulus(
                res.program.graph, array_size=array_size, seed=seed
            )
            _assert_fused_matches(res.program, stim)

    def test_parity_deep_tree_with_circulation(self):
        g = random_tree(128, seed=1)
        res = compile_ffcl(g, TINY)
        stim = random_stimulus(res.program.graph, array_size=3, seed=5)
        _assert_fused_matches(res.program, stim)

    def test_parity_across_kernel_choice(self):
        """Both generated kernels (vector for small batches, rowwise for
        large) produce identical results around the switch threshold."""
        g = random_dag(6, 60, 3, seed=13)
        res = compile_ffcl(g, SMALL)
        graph = res.program.graph
        for array_size in (
            1, ROWWISE_MIN_WORDS - 1, ROWWISE_MIN_WORDS,
            2 * ROWWISE_MIN_WORDS,
        ):
            stim = random_stimulus(graph, array_size=array_size, seed=1)
            _assert_fused_matches(res.program, stim)

    def test_kernel_crossover_boundary(self):
        """Exactly at the vector/rowwise switch (ROWWISE_MIN_WORDS - 1,
        the threshold itself, and one past it) the engine picks the
        expected kernel AND stays bit-identical to functional
        evaluation — the boundary a off-by-one in the word-count
        comparison would silently move."""
        g = random_dag(6, 60, 3, seed=21)
        res = compile_ffcl(g, SMALL)
        graph = res.program.graph
        engine = create_engine("fused", res.program)
        vector, rowwise = engine._kernels
        calls = []
        engine._kernels = (
            lambda *a, _k=vector: (calls.append("vector"), _k(*a))[1],
            lambda *a, _k=rowwise: (calls.append("rowwise"), _k(*a))[1],
        )
        expected_kernel = {
            ROWWISE_MIN_WORDS - 1: "vector",
            ROWWISE_MIN_WORDS: "rowwise",
            ROWWISE_MIN_WORDS + 1: "rowwise",
        }
        for array_size, kernel_name in expected_kernel.items():
            calls.clear()
            stim = random_stimulus(graph, array_size=array_size, seed=2)
            reference = evaluate_graph(graph, stim)
            result = engine.run(stim)
            for po, words in reference.items():
                assert np.array_equal(result.outputs[po], words), (
                    array_size, po,
                )
            assert calls == [kernel_name], (array_size, calls)

    def test_workspace_reused_per_shape(self):
        g = random_dag(5, 30, 2, seed=3)
        res = compile_ffcl(g, TINY)
        engine = create_engine("fused", res.program)
        stim = random_stimulus(res.program.graph, array_size=2, seed=0)
        engine.run(stim)
        ws = engine._workspaces[(2,)]
        engine.run(stim)
        assert engine._workspaces[(2,)] is ws  # no reallocation
        stats = engine.workspace_stats()
        assert stats["num_regs"] == engine.fused.num_regs
        assert "(2,)" in stats["shapes"]

    def test_results_do_not_alias_workspace(self):
        g = random_dag(5, 30, 2, seed=6)
        res = compile_ffcl(g, TINY)
        engine = create_engine("fused", res.program)
        graph = res.program.graph
        first_stim = random_stimulus(graph, array_size=2, seed=0)
        first = engine.run(first_stim)
        snapshot = {
            name: word.copy() for name, word in first.outputs.items()
        }
        engine.run(random_stimulus(graph, array_size=2, seed=1))
        for name, word in snapshot.items():
            assert np.array_equal(first.outputs[name], word), name

    def test_shared_session_concurrent_runs_stay_correct(self):
        """One Session shared across threads (the old trace-default
        contract): the per-engine run lock keeps results bit-exact."""
        g = random_dag(5, 40, 2, seed=22)
        res = compile_ffcl(g, SMALL)
        session = Session(res.program, engine="fused")
        graph = res.program.graph
        stims = [
            random_stimulus(graph, array_size=2, seed=s) for s in range(4)
        ]
        refs = [evaluate_graph(graph, stim) for stim in stims]
        mismatches = []

        def worker(index):
            for _ in range(25):
                out = session.run(stims[index])
                for name, word in refs[index].items():
                    if not np.array_equal(out.outputs[name], word):
                        mismatches.append((index, name))
                        return

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not mismatches

    def test_alternating_batch_shapes(self):
        g = random_dag(5, 40, 2, seed=10)
        res = compile_ffcl(g, SMALL)
        session = Session(res.program, engine="fused")
        graph = res.program.graph
        for array_size in (1, 5, 1, 64, 5):
            stim = random_stimulus(graph, array_size=array_size, seed=2)
            ref = evaluate_graph(graph, stim)
            out = session.run(stim)
            for name, word in ref.items():
                assert np.array_equal(out.outputs[name], word), name

    def test_scalar_inputs_match_trace(self):
        """0-d (scalar-per-PI) stimulus: accepted, and output shapes
        match the trace engine's 0-d outputs exactly."""
        g = random_dag(4, 25, 2, seed=14)
        res = compile_ffcl(g, TINY)
        graph = res.program.graph
        rng = np.random.default_rng(3)
        stim = {
            graph.input_name(nid): np.uint64(
                rng.integers(0, 2**63, dtype=np.uint64)
            )
            for nid in graph.inputs
        }
        trace_out = create_engine("trace", res.program).run(stim)
        fused_out = create_engine("fused", res.program).run(stim)
        for name, word in trace_out.outputs.items():
            assert fused_out.outputs[name].shape == word.shape == ()
            assert np.array_equal(fused_out.outputs[name], word), name

    def test_missing_and_mismatched_inputs_rejected(self):
        g = random_dag(4, 20, 1, seed=5)
        s = Session(g, TINY, engine="fused")
        with pytest.raises(KeyError, match="primary input"):
            s.run({})
        stim = random_stimulus(s.graph, array_size=2, seed=0)
        first = next(iter(stim))
        stim[first] = np.zeros(3, dtype=np.uint64)
        with pytest.raises(ValueError, match="share one shape"):
            s.run(stim)

    def test_generated_kernel_source_inspectable(self):
        g = random_dag(5, 30, 2, seed=4)
        res = compile_ffcl(g, TINY)
        engine = create_engine("fused", res.program)
        vector, rowwise = engine._kernels
        assert vector.__source__.startswith("def _kernel(")
        assert rowwise.__source__.startswith("def _kernel(")
        # The vector kernel gathers; the rowwise kernel prefers direct
        # row views (falling back to gathers only on aliasing levels).
        assert "take(" in vector.__source__ or "rows[" in vector.__source__

    def test_profile_levels_matches_level_count(self):
        g = random_dag(5, 40, 2, seed=11)
        res = compile_ffcl(g, SMALL)
        engine = create_engine("fused", res.program)
        stim = random_stimulus(res.program.graph, array_size=2, seed=0)
        records = engine.profile_levels(stim)
        assert len(records) == engine.fused.num_levels
        assert all(r["seconds"] >= 0 for r in records)
        assert [r["level"] for r in records] == list(range(len(records)))
        # The profiled (interpreted) execution leaves the workspace in
        # the same state as a kernel run: outputs still check out.
        ref = evaluate_graph(res.program.graph, stim)
        out = engine.run(stim)
        for name, word in ref.items():
            assert np.array_equal(out.outputs[name], word), name


# ----------------------------------------------------------------------
class TestFusedArtifacts:
    def test_fused_tables_embedded_and_round_trip(self):
        g = random_dag(6, 60, 3, seed=17)
        res = compile_ffcl(g, SMALL)
        artifact = ExecutableArtifact.from_compile(res)
        assert artifact.fused is not None
        data = artifact.to_bytes()
        loaded = ExecutableArtifact.from_bytes(data)
        assert loaded.fused is not None
        assert loaded.to_bytes() == data  # deterministic re-encode
        assert loaded.fused.num_regs == artifact.fused.num_regs
        for a, b in zip(loaded.fused.levels, artifact.fused.levels):
            assert np.array_equal(a.a_index, b.a_index)
            assert np.array_equal(a.b_index, b.b_index)
            assert np.array_equal(a.out_index, b.out_index)
            assert a.segments == b.segments

    def test_artifact_session_runs_fused_bit_identical(self):
        g = random_dag(6, 50, 3, seed=18)
        res = compile_ffcl(g, SMALL)
        artifact = ExecutableArtifact.from_bytes(
            ExecutableArtifact.from_compile(res).to_bytes()
        )
        session = artifact.session()  # the fused serving default
        assert session.engine_name == "fused"
        stim = random_stimulus(artifact.graph, array_size=3, seed=2)
        ref = evaluate_graph(artifact.graph, stim)
        out = session.run(stim)
        for name, word in ref.items():
            assert np.array_equal(out.outputs[name], word), name

    def test_reloaded_artifact_keeps_contiguous_pi_binding(self):
        """The sorted JSON header must not scramble PI register order:
        >= 10 numerically-suffixed PI names sort as x1, x10, x2, ... by
        name, but decode restores register order, so the engine's
        single-block input binding survives the AOT path."""
        g = LogicGraph()
        pis = [g.add_input(f"x{i}") for i in range(12)]
        acc = pis[0]
        for pi in pis[1:]:
            acc = g.add_gate(cells.XOR, acc, pi)
        g.set_output("y", acc)
        res = compile_ffcl(g, SMALL)
        loaded = ExecutableArtifact.from_bytes(
            ExecutableArtifact.from_compile(res).to_bytes()
        )
        engine = create_engine("fused", loaded)
        assert engine._pi_contiguous
        fresh = create_engine("fused", res.program)
        assert list(engine.fused.pi_regs.values()) == list(
            fresh.fused.pi_regs.values()
        )

    def test_trace_only_artifact_still_loads(self):
        """Format compatibility: containers without fused tables load and
        serve — the fused engine renames on first use."""
        g = random_dag(5, 40, 2, seed=19)
        res = compile_ffcl(g, SMALL)
        trace_only = ExecutableArtifact(
            program=res.program, trace=lower_program(res.program)
        )
        loaded = ExecutableArtifact.from_bytes(trace_only.to_bytes())
        assert loaded.trace is not None
        assert loaded.fused is None
        fused = loaded.fused_program()
        assert fused.trace is loaded.trace
        engine = create_engine("fused", loaded)
        assert isinstance(engine, FusedEngine)
        stim = random_stimulus(loaded.graph, array_size=2, seed=0)
        ref = evaluate_graph(loaded.graph, stim)
        out = engine.run(stim)
        for name, word in ref.items():
            assert np.array_equal(out.outputs[name], word), name

    def test_program_only_artifact_still_loads(self):
        g = random_dag(5, 30, 2, seed=20)
        res = compile_ffcl(g, SMALL)
        bare = ExecutableArtifact(program=res.program)
        loaded = ExecutableArtifact.from_bytes(bare.to_bytes())
        assert loaded.trace is None and loaded.fused is None
        session = loaded.session()  # lowers + renames on first use
        stim = random_stimulus(loaded.graph, array_size=2, seed=3)
        ref = evaluate_graph(loaded.graph, stim)
        out = session.run(stim)
        for name, word in ref.items():
            assert np.array_equal(out.outputs[name], word), name


# ----------------------------------------------------------------------
class TestFusedProperties:
    @settings(deadline=None, max_examples=15)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_inputs=st.integers(min_value=2, max_value=6),
        num_gates=st.integers(min_value=5, max_value=60),
        array_size=st.integers(min_value=1, max_value=5),
    )
    def test_renamed_execution_bit_identical(
        self, seed, num_inputs, num_gates, array_size
    ):
        """Liveness renaming never changes a single output bit or any
        statistic, for arbitrary random graphs and batch sizes."""
        g = random_dag(num_inputs, num_gates, 2, seed=seed)
        res = compile_ffcl(g, TINY)
        stim = random_stimulus(
            res.program.graph, array_size=array_size, seed=seed
        )
        _assert_fused_matches(res.program, stim)

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_register_file_never_larger_than_slots(self, seed):
        g = random_dag(5, 45, 2, seed=seed)
        res = compile_ffcl(g, TINY)
        trace = lower_program(res.program)
        fused = fuse_trace(trace)
        assert fused.num_regs <= trace.num_slots


# ----------------------------------------------------------------------
class TestRunComposedAllocation:
    """In-level instruction order follows ascending output registers, so
    scattered levels decompose into few long contiguous runs (the
    slice-copy fast path of the generated and native kernels), and a
    fragmentation-starved allocation stays bit-identical."""

    def _tight_fusion(self, seed=1):
        g = random_dag(6, 90, 3, seed=seed)
        res = compile_ffcl(g, SMALL)
        trace = lower_program(res.program)
        return res, fuse_trace(trace, frag_budget=0)

    def test_free_runs_groups_contiguous_registers(self):
        from repro.core.liveness import _free_runs

        assert _free_runs([]) == []
        assert _free_runs([4]) == [(1, 4)]
        assert _free_runs([2, 3, 4, 7, 9, 10]) == [(3, 2), (1, 7), (2, 9)]

    def test_out_index_ascending_even_when_fragmented(self):
        res, tight = self._tight_fusion()
        assert any(
            np.any(np.diff(lv.out_index) != 1) for lv in tight.levels
        ), "frag_budget=0 should force at least one scattered level"
        for level in tight.levels:
            # Sorted and distinct: scattered levels are still composed
            # of ascending runs the emitters can slice-copy.
            assert np.all(np.diff(level.out_index) > 0)

    def test_fragmented_allocation_bit_identical(self):
        res, tight = self._tight_fusion()
        graph = res.program.graph
        engine = FusedEngine(res.program, fused=tight)
        assert engine.fused is tight
        trace_engine = create_engine("trace", res.program)
        for array_size in (1, 3, ROWWISE_MIN_WORDS):
            stim = random_stimulus(graph, array_size=array_size, seed=7)
            reference = evaluate_graph(graph, stim)
            result = engine.run(stim)
            expected = trace_engine.run(stim)
            for name, word in reference.items():
                assert np.array_equal(result.outputs[name], word), name
            assert (
                result.compute_instructions_executed
                == expected.compute_instructions_executed
            )
            assert result.macro_cycles == expected.macro_cycles

    def test_run_length_stats_report(self):
        res, tight = self._tight_fusion()
        default = fuse_trace(tight.trace, cache=False)
        loose, strained = (
            default.run_length_stats(), tight.run_length_stats()
        )
        for stats in (loose, strained):
            assert stats["levels"] == default.num_levels
            assert 0.0 <= stats["contiguous_fraction"] <= 1.0
            assert stats["mean_runs_per_level"] >= 1.0
            assert stats["mean_max_run"] >= 1.0
        # The default fragmentation budget never does worse than the
        # starved one on fast-path coverage.
        assert (
            loose["contiguous_fraction"] >= strained["contiguous_fraction"]
        )
        assert loose["mean_runs_per_level"] <= strained["mean_runs_per_level"]


# ----------------------------------------------------------------------
class TestEngineTuning:
    def test_rowwise_min_words_option(self):
        g = random_dag(5, 40, 2, seed=31)
        res = compile_ffcl(g, SMALL)
        graph = res.program.graph
        engine = create_engine("fused", res.program, rowwise_min_words=1)
        assert engine.rowwise_min_words == 1
        vector, rowwise = engine._kernels
        calls = []
        engine._kernels = (
            lambda *a, _k=vector: (calls.append("vector"), _k(*a))[1],
            lambda *a, _k=rowwise: (calls.append("rowwise"), _k(*a))[1],
        )
        stim = random_stimulus(graph, array_size=2, seed=0)
        reference = evaluate_graph(graph, stim)
        result = engine.run(stim)
        # 2 words >= the overridden threshold: rowwise despite the
        # tiny batch, and still bit-identical.
        assert calls == ["rowwise"]
        for name, word in reference.items():
            assert np.array_equal(result.outputs[name], word), name

    def test_profile_levels_reports_kernel_choice(self):
        g = random_dag(5, 40, 2, seed=32)
        res = compile_ffcl(g, SMALL)
        engine = create_engine("fused", res.program)
        graph = res.program.graph
        small = random_stimulus(graph, array_size=2, seed=0)
        large = random_stimulus(
            graph, array_size=ROWWISE_MIN_WORDS, seed=0
        )
        assert {
            r["kernel"] for r in engine.profile_levels(small)
        } == {"vector"}
        assert {
            r["kernel"] for r in engine.profile_levels(large)
        } == {"rowwise"}

    def test_calibrate_crossover_smoke(self):
        g = random_dag(5, 40, 2, seed=33)
        res = compile_ffcl(g, SMALL)
        engine = create_engine("fused", res.program)
        report = engine.calibrate_crossover(word_sizes=[1, 2], repeats=1)
        assert report["default_rowwise_min_words"] == ROWWISE_MIN_WORDS
        assert report["engine_rowwise_min_words"] == ROWWISE_MIN_WORDS
        assert [p["words"] for p in report["points"]] == [1, 2]
        for point in report["points"]:
            assert point["vector_seconds"] > 0
            assert point["rowwise_seconds"] > 0
        assert report["measured_crossover_words"] in (1, 2, None)
