"""The delta engine: incremental streaming execution.

Covers the four layers the streaming stack is built from:

* :mod:`repro.core.fanout` — single-assignment delta tables and the
  CSR register->consumer fanout, plus their process-wide cache,
* :class:`repro.engine.delta.DeltaEngine` — bit-identity to the fused
  engine over ANY stream history (hypothesis-driven low- and
  high-entropy streams), state lifecycle, and the dense fallbacks,
* the ``.lpa`` artifact's optional embedded fanout section,
* :class:`repro.serve.stream.StreamSession` — sticky stateful serving.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifact import ExecutableArtifact
from repro.core import LPUConfig, compile_ffcl
from repro.core.fanout import (
    adopt_fanout,
    build_fanout,
    clear_fanout_cache,
    fanout_cache_stats,
)
from repro.core.liveness import fuse_trace
from repro.core.trace import lower_program
from repro.engine import Session, available_engines, create_engine
from repro.engine.delta import DeltaEngine
from repro.engine.fused import _PI_BASE
from repro.lpu import evaluate_graph, random_stimulus
from repro.netlist import random_dag
from repro.serve import StreamingServer, make_stream
from repro.serve.pool import WorkerPool

SMALL = LPUConfig(num_lpvs=4, lpes_per_lpv=8)

#: Module-cached compiles (fixtures don't mix with @given; lowering and
#: fusion are shared through their process-wide caches anyway).
_CACHE = {}


def _compiled():
    if "result" not in _CACHE:
        g = random_dag(10, 120, 6, seed=5)
        _CACHE["result"] = compile_ffcl(g, SMALL)
    return _CACHE["result"]


def _stats_tuple(result):
    return (
        result.macro_cycles,
        result.clock_cycles,
        result.compute_instructions_executed,
        result.switch_routes,
        result.peak_buffer_words,
        result.buffer_writes,
    )


def _assert_step_equal(expected, got, context=""):
    assert expected.outputs.keys() == got.outputs.keys(), context
    for name, words in expected.outputs.items():
        assert np.array_equal(got.outputs[name], words), (context, name)
    assert _stats_tuple(expected) == _stats_tuple(got), context


# ----------------------------------------------------------------------
class TestFanoutTables:
    def test_delta_engine_registered(self):
        assert "delta" in available_engines()

    def test_single_assignment_layout(self):
        """Every kept instruction owns one unique persistent row; level
        output rows are contiguous ascending; every operand row is
        strictly below its consumer's row (gather-before-scatter)."""
        program = _compiled().program
        fused = fuse_trace(lower_program(program))
        tables = build_fanout(fused)
        assert tables.num_rows == tables.num_pinned + tables.num_instructions
        assert tables.num_pinned == _PI_BASE + len(fused.pi_regs)
        for lev in range(tables.num_levels):
            s = int(tables.level_start[lev])
            e = int(tables.level_start[lev + 1])
            for gid in range(s, e):
                row = tables.num_pinned + gid
                assert int(tables.a_row[gid]) < row
                assert int(tables.b_row[gid]) < row
        # CSR edges point at strictly later instructions.
        for row in range(tables.num_rows):
            for gid in tables.consumers_of(row):
                assert tables.num_pinned + int(gid) > row

    def test_dense_view_matches_fused_outputs(self):
        """The dense repackaging of the delta tables executes to the
        same outputs as the original fused program."""
        result = _compiled()
        graph = result.program.graph
        stim = random_stimulus(graph, array_size=2, seed=9)
        reference = evaluate_graph(graph, stim)
        got = create_engine("delta", result.program).run(stim)
        for name, words in reference.items():
            assert np.array_equal(got.outputs[name], words), name

    def test_cache_shared_and_adopted(self):
        program = _compiled().program
        fused = fuse_trace(lower_program(program))
        clear_fanout_cache()
        first = build_fanout(fused)
        again = build_fanout(fused)
        assert again is first
        stats = fanout_cache_stats()
        assert stats["hits"] >= 1 and stats["live_entries"] >= 1
        assert adopt_fanout(first) is first
        clear_fanout_cache()
        assert fanout_cache_stats()["live_entries"] == 0


# ----------------------------------------------------------------------
class TestDeltaParity:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        flip_bits=st.integers(1, 6),
        array_size=st.integers(1, 3),
    )
    def test_property_low_entropy_stream_bit_identical(
        self, seed, flip_bits, array_size
    ):
        """ANY random-walk stream (any seed, flip rate, batch width) is
        bit-identical to per-step fused execution — outputs AND
        statistics — across the whole stateful history."""
        program = _compiled().program
        stream = make_stream(
            program.graph, steps=8, flip_bits=flip_bits,
            array_size=array_size, seed=seed,
        )
        fused = Session(program, engine="fused")
        delta = Session(program, engine="delta")
        for i, stim in enumerate(stream):
            _assert_step_equal(fused.run(stim), delta.run(stim), i)
        counters = delta.engine.delta_stats()
        assert counters["runs"] == len(stream)
        assert counters["full_runs"] >= 1

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_random_stream_bit_identical_with_fallback(
        self, seed
    ):
        """Fully random (high-entropy) streams stay bit-identical and
        drive the dense input fallback, not the sparse sweep."""
        program = _compiled().program
        stream = make_stream(
            program.graph, steps=6, array_size=2,
            random_stream=True, seed=seed,
        )
        fused = Session(program, engine="fused")
        engine = DeltaEngine(program)
        state = engine.new_state()
        for i, stim in enumerate(stream):
            expected = fused.run(stim)
            got = engine.run_with_state(stim, state)
            _assert_step_equal(expected, got, i)
        assert state.dense_fallback_runs > 0
        assert state.sparse_runs + state.clean_runs \
            + state.dense_fallback_runs + state.full_runs == state.runs


# ----------------------------------------------------------------------
class TestDeltaStateMachine:
    def test_independent_states_stay_isolated(self):
        """Two interleaved streams over ONE engine, each with its own
        state, match two dedicated fused sessions step for step."""
        program = _compiled().program
        engine = DeltaEngine(program)
        streams = [
            make_stream(program.graph, steps=6, flip_bits=1, seed=s)
            for s in (11, 22)
        ]
        states = [engine.new_state(), engine.new_state()]
        fused = [Session(program, engine="fused") for _ in streams]
        for step in range(6):
            for client in (0, 1):
                expected = fused[client].run(streams[client][step])
                got = engine.run_with_state(
                    streams[client][step], states[client]
                )
                _assert_step_equal(expected, got, (client, step))
        for state in states:
            assert state.runs == 6
            assert state.full_runs >= 1

    def test_reset_forces_full_run(self):
        program = _compiled().program
        session = Session(program, engine="delta")
        stim = random_stimulus(program.graph, array_size=1, seed=0)
        session.run(stim)
        session.run(stim)
        engine = session.engine
        assert engine.delta_stats()["clean_runs"] == 1
        engine.reset()
        session.run(stim)
        stats = engine.delta_stats()
        assert stats["full_runs"] == 2

    def test_clean_repeat_run_skips_execution(self):
        program = _compiled().program
        engine = DeltaEngine(program)
        state = engine.new_state()
        stim = random_stimulus(program.graph, array_size=1, seed=4)
        first = engine.run_with_state(stim, state)
        again = engine.run_with_state(stim, state)
        _assert_step_equal(first, again)
        assert state.clean_runs == 1
        assert state.sparse_instructions == 0

    def test_shape_change_rebinds_and_stays_correct(self):
        program = _compiled().program
        graph = program.graph
        session = Session(program, engine="delta")
        for array_size in (1, 3, 1):
            stim = random_stimulus(graph, array_size=array_size, seed=2)
            got = session.run(stim)
            reference = evaluate_graph(graph, stim)
            for name, words in reference.items():
                assert np.array_equal(got.outputs[name], words)
        assert session.engine.delta_stats()["full_runs"] == 3

    def test_dense_fallback_knobs(self):
        """dense_input_fraction=0 forces every dirty run dense; a
        fraction above 1 disables the whole-run fallback entirely."""
        program = _compiled().program
        stream = make_stream(program.graph, steps=5, flip_bits=2, seed=7)

        always = DeltaEngine(program, dense_input_fraction=0.0)
        never = DeltaEngine(program, dense_input_fraction=1.5)
        fused = Session(program, engine="fused")
        for stim in stream:
            expected = fused.run(stim)
            _assert_step_equal(expected, always.run(stim))
            _assert_step_equal(expected, never.run(stim))
        assert always.delta_stats()["sparse_runs"] == 0
        assert always.delta_stats()["dense_fallback_runs"] == 4
        assert never.delta_stats()["dense_fallback_runs"] == 0
        assert never.delta_stats()["sparse_runs"] == 4

    def test_scalar_stimulus_matches_fused(self):
        program = _compiled().program
        base = random_stimulus(program.graph, array_size=1, seed=1)
        stim = {name: words.reshape(())[()] for name, words in base.items()}
        fused = Session(program, engine="fused").run(stim)
        delta = Session(program, engine="delta").run(stim)
        for name, word in fused.outputs.items():
            assert delta.outputs[name].shape == word.shape == ()
            assert delta.outputs[name] == word

    def test_input_contract_errors(self):
        program = _compiled().program
        session = Session(program, engine="delta")
        with pytest.raises(KeyError, match="missing value for primary"):
            session.run({})
        stim = random_stimulus(program.graph, array_size=2, seed=0)
        name = next(iter(stim))
        bad = dict(stim)
        bad[name] = np.zeros(3, dtype=np.uint64)
        with pytest.raises(ValueError, match="share one shape"):
            session.run(bad)


# ----------------------------------------------------------------------
class TestArtifactFanout:
    def test_fanout_embedded_and_round_trip(self):
        result = _compiled()
        artifact = result.to_artifact(fanout=True)
        payload = artifact.to_bytes()
        loaded = ExecutableArtifact.from_bytes(payload)
        assert loaded.fanout is not None
        assert loaded.fanout.fused is loaded.fused
        # Deterministic re-encode: byte-identical through the round trip.
        assert loaded.to_bytes() == payload
        # The embedded tables are the ones the accessor hands out.
        assert loaded.fanout_tables() is adopt_fanout(loaded.fanout)
        summary = loaded.summary()["fanout"]
        assert summary["rows"] == loaded.fanout.num_rows

    def test_plain_artifact_has_no_fanout_section(self):
        program = _compiled().program
        artifact = ExecutableArtifact.from_bytes(
            ExecutableArtifact.from_program(program).to_bytes()
        )
        assert artifact.fanout is None
        assert artifact.summary()["fanout"] is None
        # The accessor still derives tables on demand.
        assert artifact.fanout_tables().num_instructions > 0

    def test_fanout_requires_fused_tables(self):
        program = _compiled().program
        with pytest.raises(ValueError, match="fanout"):
            ExecutableArtifact.from_program(
                program, lower=False, fanout=True
            )

    def test_delta_session_from_artifact_bit_identical(self):
        result = _compiled()
        graph = result.program.graph
        payload = result.to_artifact(fanout=True).to_bytes()
        loaded = ExecutableArtifact.from_bytes(payload)
        stream = make_stream(graph, steps=6, flip_bits=1, seed=3)
        fused = Session(result.program, engine="fused")
        delta = loaded.session(engine="delta")
        for i, stim in enumerate(stream):
            _assert_step_equal(fused.run(stim), delta.run(stim), i)
        # The embedded tables were adopted, not rebuilt.
        assert delta.engine.tables is adopt_fanout(loaded.fanout)


# ----------------------------------------------------------------------
class TestStreamSession:
    def test_sticky_sessions_isolated_across_workers(self):
        result = _compiled()
        program = result.program
        streams = [
            make_stream(program.graph, steps=5, flip_bits=1, seed=s)
            for s in (1, 2, 3)
        ]
        fused = [Session(program, engine="fused") for _ in streams]
        with StreamingServer(program, num_workers=2) as server:
            sessions = [server.open_session() for _ in streams]
            assert sorted(server.stats()["open_sessions"]) == [1, 2]
            for step in range(5):
                futures = [
                    session.submit(stream[step])
                    for session, stream in zip(sessions, streams)
                ]
                for client, future in enumerate(futures):
                    expected = fused[client].run(streams[client][step])
                    _assert_step_equal(
                        expected, future.result(timeout=30),
                        (client, step),
                    )
            for session in sessions:
                assert session.stateful
                assert session.stats()["runs"] == 5
                session.close()
            assert server.stats()["open_sessions"] == [0, 0]

    def test_session_reset_runs_densely_again(self):
        program = _compiled().program
        stim = random_stimulus(program.graph, array_size=1, seed=6)
        with StreamingServer(program) as server:
            with server.open_session() as session:
                session.run(stim)
                session.run(stim)
                session.reset()
                session.run(stim)
                assert session.stats()["full_runs"] == 2
                assert session.stats()["clean_runs"] == 1

    def test_stateless_engine_degrades_to_per_request(self):
        program = _compiled().program
        stim = random_stimulus(program.graph, array_size=1, seed=8)
        expected = Session(program, engine="fused").run(stim)
        with StreamingServer(program, engine="fused") as server:
            with server.open_session() as session:
                assert not session.stateful
                assert session.stats() == {}
                _assert_step_equal(expected, session.run(stim))

    def test_closed_session_rejects_steps(self):
        program = _compiled().program
        stim = random_stimulus(program.graph, array_size=1, seed=0)
        with StreamingServer(program) as server:
            session = server.open_session()
            session.close()
            with pytest.raises(RuntimeError, match="closed"):
                session.run(stim)

    def test_submit_call_needs_thread_backend(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork start method on this platform")
        program = _compiled().program
        with WorkerPool(program, num_workers=1, backend="fork") as pool:
            with pytest.raises(RuntimeError, match="thread"):
                pool.submit_call(0, lambda session: None)
