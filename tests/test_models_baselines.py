"""Tests for workload models, the FFCL generator, baselines, and analysis."""

import numpy as np
import pytest

from repro.analysis import (
    crossover_point,
    format_number,
    geometric_mean,
    render_ratio,
    render_series,
    render_table,
)
from repro.baselines import (
    HLS4MLModel,
    LogicNetsModel,
    LPUResourceModel,
    MACArrayModel,
    NullaDSPModel,
    PAPER_REPORTED_FPS,
    PAPER_TABLE1,
    XNORModel,
)
from repro.core import LPUConfig, PAPER_CONFIG
from repro.models import (
    LayerWorkload,
    conv_layer,
    dense_layer,
    evaluate_layer,
    evaluate_model,
    jsc_l_workload,
    jsc_m_workload,
    layer_block,
    lenet5_workload,
    mlpmixer_b4_workload,
    mlpmixer_s4_workload,
    neuron_graph,
    nid_workload,
    table2_models,
    table3_models,
    threshold_neuron_graph,
    vgg16_paper_layers,
    vgg16_workload,
)

SMALL = LPUConfig(num_lpvs=4, lpes_per_lpv=8)


class TestLayerDescriptors:
    def test_conv_shape_math(self):
        layer, out_hw = conv_layer("c", 3, 64, 3, 32)
        assert out_hw == 32  # same padding
        assert layer.positions == 1024
        assert layer.input_bits == 27
        assert layer.macs == 27 * 64 * 1024
        assert layer.params == 27 * 64

    def test_valid_padding(self):
        layer, out_hw = conv_layer("c", 1, 6, 5, 28, padding=0)
        assert out_hw == 24

    def test_dense(self):
        layer = dense_layer("d", 100, 10)
        assert layer.positions == 1
        assert layer.macs == 1000

    def test_fan_in_clipped_to_inputs(self):
        layer = dense_layer("d", 4, 10, pruned_fan_in=100)
        assert layer.fan_in == 4

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            LayerWorkload("x", "pool", 1, 1, 1, 1, 1, 1)


class TestModelDefinitions:
    def test_vgg16_thirteen_convs(self):
        m = vgg16_workload()
        assert len(m.layers) == 13
        assert len(vgg16_paper_layers(m)) == 12
        assert m.layers[-1].num_neurons == 512

    def test_vgg16_imagenet_macs(self):
        m = vgg16_workload(imagenet=True)
        # Conv MACs of VGG16 at 224x224 are ~15.3 GMACs.
        assert 14e9 < m.total_macs < 16.5e9

    def test_lenet5_structure(self):
        m = lenet5_workload()
        assert [l.name for l in m.layers] == [
            "conv1", "conv2", "fc1", "fc2", "fc3",
        ]
        assert m.layers[2].input_bits == 256  # 16 x 4 x 4

    def test_mixer_layer_counts(self):
        s = mlpmixer_s4_workload()
        b = mlpmixer_b4_workload()
        # stem + 4 blocks per mixing layer + head
        assert len(s.layers) == 1 + 8 * 4 + 1
        assert len(b.layers) == 1 + 12 * 4 + 1

    def test_tiny_models(self):
        assert nid_workload().layers[0].input_bits == 593
        assert jsc_m_workload().num_classes == 5
        assert jsc_l_workload().total_neurons > jsc_m_workload().total_neurons

    def test_suites(self):
        assert len(table2_models()) == 4
        assert len(table3_models()) == 3


class TestWorkloadGenerator:
    def test_neuron_graph_cached(self):
        g1 = neuron_graph(7, 0)
        g2 = neuron_graph(7, 0)
        assert g1 is g2

    def test_threshold_neuron_is_threshold_function(self):
        g = threshold_neuron_graph(5, 3, care_fraction=1.0)
        # Fully-specified threshold functions are monotone in each input's
        # fixed polarity; sanity: graph is a function of <= 5 inputs.
        assert g.num_inputs == 5
        assert g.num_outputs == 1

    def test_wide_fan_in_synthetic(self):
        g = neuron_graph(64, 1)
        assert g.num_inputs == 64
        assert g.num_gates > 10

    def test_layer_block_outputs(self):
        layer = dense_layer("d", 100, 40, pruned_fan_in=6)
        block, sampled = layer_block(layer, sample_neurons=4, seed=0)
        assert sampled == 4
        assert block.num_outputs == 4

    def test_layer_block_samples_at_most_width(self):
        layer = dense_layer("d", 20, 2, pruned_fan_in=5)
        _, sampled = layer_block(layer, sample_neurons=8, seed=0)
        assert sampled == 2


class TestEvaluation:
    def test_layer_evaluation_scaling(self):
        layer = dense_layer("d", 64, 32, pruned_fan_in=6)
        ev = evaluate_layer(layer, SMALL, sample_neurons=4, seed=0)
        assert ev.scale == 8.0
        assert ev.makespan_full >= ev.makespan_sample
        assert ev.cycles_per_image == pytest.approx(
            ev.makespan_full / SMALL.word_bits
        )

    def test_conv_positions_drive_passes(self):
        layer, _ = conv_layer("c", 8, 16, 3, 16, pruned_fan_in=6)
        ev = evaluate_layer(layer, SMALL, sample_neurons=4)
        assert ev.passes_per_image == int(np.ceil(256 / SMALL.word_bits))
        assert ev.cycles_per_image == ev.makespan_full * ev.passes_per_image

    def test_merging_improves_or_matches_throughput(self):
        m = jsc_m_workload()
        merged = evaluate_model(m, SMALL, merge=True, sample_neurons=6)
        unmerged = evaluate_model(m, SMALL, merge=False, sample_neurons=6)
        assert merged.fps >= unmerged.fps
        assert merged.total_mfgs <= unmerged.total_mfgs

    def test_more_lpvs_never_slower(self):
        m = jsc_m_workload()
        small = evaluate_model(m, LPUConfig(num_lpvs=2), sample_neurons=4)
        big = evaluate_model(m, LPUConfig(num_lpvs=16), sample_neurons=4)
        assert big.total_cycles_per_image <= small.total_cycles_per_image

    def test_fps_latency_consistent(self):
        m = jsc_m_workload()
        ev = evaluate_model(m, SMALL, sample_neurons=4)
        assert ev.fps == pytest.approx(
            SMALL.frequency_hz / (SMALL.t_c * ev.total_cycles_per_image)
        )


class TestBaselines:
    def test_mac_roofline_bounds(self):
        mac = MACArrayModel()
        vgg = vgg16_workload(imagenet=True)
        assert mac.latency_seconds(vgg) == max(
            mac.compute_seconds(vgg), mac.memory_seconds(vgg)
        )
        assert mac.bound(vgg) in ("compute", "memory")

    def test_mac_monotone_in_macs(self):
        mac = MACArrayModel()
        assert mac.fps(vgg16_workload()) > mac.fps(
            vgg16_workload(imagenet=True)
        )

    def test_xnor_faster_than_mac(self):
        vgg = vgg16_workload()
        assert XNORModel().fps(vgg) > MACArrayModel().fps(vgg)

    def test_nulladsp_scales_with_gates(self):
        ndsp = NullaDSPModel()
        assert ndsp.fps(jsc_m_workload()) > ndsp.fps(vgg16_workload())

    def test_logicnets_tiny_models_replicate(self):
        ln = LogicNetsModel()
        assert ln.parallel_instances(jsc_m_workload()) > ln.parallel_instances(
            jsc_l_workload()
        )
        assert not ln.reprogrammable()

    def test_logicnets_beats_lpu_on_tiny_models(self):
        """Table III's honest outcome: hardened pipelines win tiny models."""
        ln = LogicNetsModel()
        for model in table3_models():
            lpu = evaluate_model(model, PAPER_CONFIG, sample_neurons=4)
            assert ln.fps(model) > lpu.fps

    def test_hls4ml_ii_grows_with_model(self):
        h = HLS4MLModel()
        assert h.achievable_ii(vgg16_workload()) >= h.achievable_ii(
            jsc_m_workload()
        )

    def test_paper_reported_constants_present(self):
        assert PAPER_REPORTED_FPS["NID"]["LogicNets"] == pytest.approx(95.24e6)
        assert PAPER_REPORTED_FPS["JSC-L"]["Google+CERN"] == pytest.approx(
            76.92e6
        )


class TestResourceModel:
    def test_table1_reproduction(self):
        est = LPUResourceModel().estimate(PAPER_CONFIG)
        assert est.flip_flops == pytest.approx(PAPER_TABLE1["FF"], rel=0.25)
        assert est.luts == pytest.approx(PAPER_TABLE1["LUT"], rel=0.25)
        assert est.bram_kb == pytest.approx(
            PAPER_TABLE1["BRAM_Kb"], rel=0.25
        )
        assert est.frequency_hz == PAPER_TABLE1["FREQ_Hz"]
        assert est.fits()

    def test_resources_scale_with_lpvs(self):
        model = LPUResourceModel()
        small = model.estimate(LPUConfig(num_lpvs=4))
        big = model.estimate(LPUConfig(num_lpvs=32))
        assert big.flip_flops == 8 * small.flip_flops

    def test_frequency_derates_for_wide_lpvs(self):
        model = LPUResourceModel()
        assert (
            model.estimate(LPUConfig(lpes_per_lpv=64)).frequency_hz
            < model.estimate(LPUConfig(lpes_per_lpv=32)).frequency_hz
        )


class TestAnalysis:
    def test_format_number(self):
        assert format_number(None) == "-"
        assert format_number(1500) == "1.50K"
        assert format_number(2.5e6) == "2.50M"
        assert format_number(0) == "0"

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bbb"], [[1, 2], ["x", 3e6]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert len({len(l) for l in lines[1:]}) <= 2  # header+rule+rows align

    def test_render_ratio(self):
        out = render_ratio("x", 2.0, 1.0)
        assert "2.00x" in out
        assert "no paper reference" in render_ratio("x", 2.0, None)

    def test_render_series_scales(self):
        text = render_series("S", "x", [1, 2], {"a": [1.0, 2.0]})
        assert "#" in text

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_crossover(self):
        x, found = crossover_point([1, 2, 4], [10.0, 3.0, 1.0], 3.5)
        assert found and x == 2
        _, found2 = crossover_point([1, 2], [10.0, 9.0], 1.0)
        assert not found2
