"""Tests for truth tables, Quine-McCluskey, Espresso, and factoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import graphs_equivalent, random_dag
from repro.synth import (
    Cube,
    TruthTable,
    espresso_minimize,
    factored_graph,
    graph_from_truth_table,
    minimize,
    prime_implicants,
    sop_cost,
    sop_to_graph,
)
from repro.synth.factoring import factoring_gain


class TestCube:
    def test_literal_extraction(self):
        c = Cube(0b101, 0b001)  # x0 & ~x2
        assert c.literals() == [(0, 1), (2, 0)]
        assert c.num_literals() == 2
        assert str(c) == "x0~x2"

    def test_contains_minterm(self):
        c = Cube(0b11, 0b01)  # x0 & ~x1
        assert c.contains_minterm(0b01)
        assert c.contains_minterm(0b101)
        assert not c.contains_minterm(0b11)

    def test_contains_cube(self):
        big = Cube(0b01, 0b01)  # x0
        small = Cube(0b11, 0b01)  # x0 & ~x1
        assert big.contains_cube(small)
        assert not small.contains_cube(big)

    def test_intersects(self):
        assert Cube(0b1, 0b1).intersects(Cube(0b10, 0b10))
        assert not Cube(0b1, 0b1).intersects(Cube(0b1, 0b0))

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            Cube(0b01, 0b10)

    def test_without_literal(self):
        c = Cube(0b11, 0b01)
        assert c.without_literal(1) == Cube(0b01, 0b01)


class TestTruthTable:
    def test_from_minterms(self):
        t = TruthTable.from_minterms(2, [1, 2])
        assert t.minterms() == [1, 2]
        assert t.off_minterms() == [0, 3]

    def test_dont_cares_excluded_from_both_sets(self):
        t = TruthTable.from_minterms(2, [1], dont_cares=[3])
        assert t.minterms() == [1]
        assert 3 not in t.off_minterms()
        assert t.dc_minterms() == [3]

    def test_from_graph_xor(self):
        g = random_dag(2, 1, 1, seed=5)  # may be any 2-input function
        t = TruthTable.from_graph(g)
        for m in range(4):
            bits = {"x0": m & 1, "x1": (m >> 1) & 1}
            assert t.value(m) == g.evaluate_bits(bits)["y0"]

    def test_from_graph_matches_eval_many_vars(self):
        g = random_dag(7, 40, 1, seed=3)
        t = TruthTable.from_graph(g)
        rng = np.random.default_rng(0)
        for _ in range(32):
            m = int(rng.integers(0, 128))
            bits = {f"x{i}": (m >> i) & 1 for i in range(7)}
            assert t.value(m) == g.evaluate_bits(bits)[g.outputs[0][0]]

    def test_cover_checks(self):
        t = TruthTable.from_minterms(3, [0, 1, 2, 3])  # ~x2
        cover = [Cube(0b100, 0)]
        assert t.cover_is_complete(cover)
        assert not t.cube_intersects_off(cover[0])
        bad = Cube(0, 0)  # constant 1 hits the OFF set
        assert t.cube_intersects_off(bad)

    def test_complement(self):
        t = TruthTable.from_minterms(2, [0])
        assert t.complement().minterms() == [1, 2, 3]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TruthTable(2, np.zeros(3, dtype=bool))


def check_cover_exact(t: TruthTable, cover):
    """A cover must contain ON, avoid OFF (don't-cares are free)."""
    assert t.cover_is_complete(cover)
    for cube in cover:
        assert not t.cube_intersects_off(cube)


class TestQuineMcCluskey:
    def test_classic_example(self):
        # f = Σm(0,1,2,5,6,7) over 3 vars: minimal SOP has 3 cubes.
        t = TruthTable.from_minterms(3, [0, 1, 2, 5, 6, 7])
        cover = minimize(t)
        check_cover_exact(t, cover)
        assert len(cover) == 3

    def test_with_dont_cares(self):
        # Classic BCD 7-segment-like: DCs shrink the cover.
        t_no_dc = TruthTable.from_minterms(4, [1, 3, 7, 11, 15])
        t_dc = TruthTable.from_minterms(4, [1, 3, 7, 11, 15], [0, 2, 5])
        c1 = minimize(t_no_dc)
        c2 = minimize(t_dc)
        check_cover_exact(t_no_dc, c1)
        check_cover_exact(t_dc, c2)
        assert sop_cost(c2) <= sop_cost(c1)

    def test_constant_zero(self):
        t = TruthTable.from_minterms(3, [])
        assert minimize(t) == []

    def test_tautology(self):
        t = TruthTable.from_minterms(2, [0, 1, 2, 3])
        cover = minimize(t)
        assert len(cover) == 1
        assert cover[0].mask == 0

    def test_prime_implicants_of_and(self):
        t = TruthTable.from_minterms(2, [3])  # x0 & x1
        primes = prime_implicants(t)
        assert primes == [Cube(0b11, 0b11)]

    @pytest.mark.parametrize("seed", range(10))
    def test_random_functions_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        bits = rng.random(1 << n) < 0.5
        t = TruthTable(n, bits)
        cover = minimize(t)
        check_cover_exact(t, cover)

    def test_too_many_vars_rejected(self):
        t = TruthTable(13, np.zeros(1 << 13, dtype=bool))
        with pytest.raises(ValueError):
            minimize(t)


class TestEspresso:
    @pytest.mark.parametrize("seed", range(10))
    def test_valid_cover_random(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(3, 9))
        bits = rng.random(1 << n) < 0.4
        care = rng.random(1 << n) < 0.7
        t = TruthTable(n, bits, care)
        cover = espresso_minimize(t)
        if t.minterms():
            check_cover_exact(t, cover)
        else:
            assert cover == []

    @pytest.mark.parametrize("seed", range(6))
    def test_close_to_exact_on_small(self, seed):
        rng = np.random.default_rng(200 + seed)
        bits = rng.random(16) < 0.5
        t = TruthTable(4, bits)
        heuristic = espresso_minimize(t)
        exact = minimize(t)
        if t.minterms():
            # Espresso should be within 50% of the exact cube count.
            assert len(heuristic) <= max(len(exact) + 2, len(exact) * 2)

    def test_tautology_single_cube(self):
        t = TruthTable.from_minterms(3, list(range(8)))
        assert espresso_minimize(t) == [Cube(0, 0)]


class TestSopAndFactoring:
    def test_sop_graph_matches_table(self):
        t = TruthTable.from_minterms(3, [1, 2, 4, 7])
        cover = minimize(t)
        g = sop_to_graph(cover, 3)
        t2 = TruthTable.from_graph(g)
        assert t == t2

    def test_factored_graph_matches_table(self):
        t = TruthTable.from_minterms(4, [0, 3, 5, 6, 9, 10, 12, 15])
        cover = minimize(t)
        g = factored_graph(cover, 4)
        t2 = TruthTable.from_graph(g)
        assert t == t2

    def test_empty_cover_is_constant_zero(self):
        g = sop_to_graph([], 2)
        assert g.evaluate_bits({"x0": 1, "x1": 1})["y"] == 0
        gf = factored_graph([], 2)
        assert gf.evaluate_bits({"x0": 1, "x1": 1})["y"] == 0

    def test_constant_one_cube(self):
        g = sop_to_graph([Cube(0, 0)], 2)
        assert g.evaluate_bits({"x0": 0, "x1": 0})["y"] == 1

    def test_direct_truth_table_graph(self):
        t = TruthTable.from_minterms(3, [2, 5])
        g = graph_from_truth_table(t)
        assert TruthTable.from_graph(g) == t

    @pytest.mark.parametrize("seed", range(6))
    def test_factoring_never_larger_gate_count(self, seed):
        rng = np.random.default_rng(300 + seed)
        bits = rng.random(64) < 0.45
        t = TruthTable(6, bits)
        cover = minimize(t)
        if not cover:
            return
        flat, factored = factoring_gain(cover, 6)
        assert factored <= flat

    @pytest.mark.parametrize("seed", range(6))
    def test_factored_equals_sop_function(self, seed):
        rng = np.random.default_rng(400 + seed)
        bits = rng.random(32) < 0.5
        t = TruthTable(5, bits)
        cover = minimize(t)
        g1 = sop_to_graph(cover, 5)
        g2 = factored_graph(cover, 5)
        assert graphs_equivalent(g1, g2)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 7),
    density=st.floats(0.1, 0.9),
)
def test_property_minimize_preserves_function(seed, n, density):
    """QM/Espresso covers agree with the original table on the care set."""
    rng = np.random.default_rng(seed)
    bits = rng.random(1 << n) < density
    care = rng.random(1 << n) < 0.8
    t = TruthTable(n, bits, care)
    cover = espresso_minimize(t) if n > 5 else minimize(t)
    g = sop_to_graph(cover, n)
    realized = TruthTable.from_graph(g)
    assert t.equivalent_under_care(realized)
