"""Tests for Verilog parsing/writing and .bench I/O."""

import pytest

from repro.netlist import (
    BenchParseError,
    VerilogParseError,
    graphs_equivalent,
    parse_bench,
    parse_verilog,
    random_dag,
    write_bench,
    write_verilog,
)


SIMPLE = """
// a full adder, gate level
module adder (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire t1, t2, t3;
  xor g1 (t1, a, b);
  xor g2 (sum, t1, cin);
  and g3 (t2, a, b);
  and g4 (t3, t1, cin);
  or  g5 (cout, t2, t3);
endmodule
"""


class TestVerilogParser:
    def test_full_adder(self):
        g = parse_verilog(SIMPLE)
        assert g.num_inputs == 3
        assert g.num_outputs == 2
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    out = g.evaluate_bits({"a": a, "b": b, "cin": cin})
                    total = a + b + cin
                    assert out["sum"] == total % 2
                    assert out["cout"] == total // 2

    def test_assign_expressions(self):
        src = """
        module m (a, b, c, y);
          input a, b, c;
          output y;
          assign y = ~(a & b) ^ (c | 1'b0);
        endmodule
        """
        g = parse_verilog(src)
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    expected = (1 - (a & b)) ^ c
                    assert g.evaluate_bits({"a": a, "b": b, "c": c})["y"] == expected

    def test_operator_precedence(self):
        # & binds tighter than ^ binds tighter than |
        src = """
        module m (a, b, c, y);
          input a, b, c; output y;
          assign y = a | b & c;
        endmodule
        """
        g = parse_verilog(src)
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assert (
                        g.evaluate_bits({"a": a, "b": b, "c": c})["y"]
                        == a | (b & c)
                    )

    def test_vector_declaration(self):
        src = """
        module m (x, y);
          input [1:0] x;
          output y;
          and g (y, x[1], x[0]);
        endmodule
        """
        g = parse_verilog(src)
        assert g.num_inputs == 2
        assert g.evaluate_bits({"x[1]": 1, "x[0]": 1})["y"] == 1
        assert g.evaluate_bits({"x[1]": 1, "x[0]": 0})["y"] == 0

    def test_cell_instances(self):
        src = """
        module m (a, b, y);
          input a, b; output y;
          wire t;
          NAND2 u0 (.A(a), .B(b), .Y(t));
          INV u1 (.A(t), .Y(y));
        endmodule
        """
        g = parse_verilog(src)
        for a in (0, 1):
            for b in (0, 1):
                assert g.evaluate_bits({"a": a, "b": b})["y"] == (a & b)

    def test_multi_input_primitive_expansion(self):
        src = """
        module m (a, b, c, d, y);
          input a, b, c, d; output y;
          and g (y, a, b, c, d);
        endmodule
        """
        g = parse_verilog(src)
        assert g.evaluate_bits({"a": 1, "b": 1, "c": 1, "d": 1})["y"] == 1
        assert g.evaluate_bits({"a": 1, "b": 1, "c": 0, "d": 1})["y"] == 0

    def test_xnor_operator(self):
        g = parse_verilog(
            "module m (a,b,y); input a,b; output y; assign y = a ~^ b; endmodule"
        )
        for a in (0, 1):
            for b in (0, 1):
                assert g.evaluate_bits({"a": a, "b": b})["y"] == (1 - (a ^ b))

    def test_comments_ignored(self):
        g = parse_verilog(
            "module m (a,y); /* block */ input a; output y; // line\n"
            "assign y = ~a; endmodule"
        )
        assert g.evaluate_bits({"a": 0})["y"] == 1

    def test_undriven_net_rejected(self):
        with pytest.raises(VerilogParseError):
            parse_verilog("module m (a,y); input a; output y; endmodule")

    def test_double_driver_rejected(self):
        with pytest.raises(VerilogParseError):
            parse_verilog(
                "module m (a,y); input a; output y;"
                "assign y = a; assign y = ~a; endmodule"
            )

    def test_no_outputs_rejected(self):
        with pytest.raises(VerilogParseError):
            parse_verilog("module m (a); input a; endmodule")

    def test_garbage_rejected(self):
        with pytest.raises(VerilogParseError):
            parse_verilog("module m (a,y); input a; output y; banana; endmodule")


class TestVerilogRoundTrip:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graph_roundtrip(self, seed):
        g = random_dag(6, 40, 3, seed=seed)
        text = write_verilog(g)
        back = parse_verilog(text)
        assert graphs_equivalent(g, back)

    def test_writer_output_is_reparseable_adder(self):
        g = parse_verilog(SIMPLE)
        back = parse_verilog(write_verilog(g))
        assert graphs_equivalent(g, back)

    def test_writer_sanitizes_names(self):
        g = parse_verilog(
            "module m (x, y); input [1:0] x; output y;"
            "and g (y, x[1], x[0]); endmodule"
        )
        text = write_verilog(g)
        assert "[" not in text.split(";", 1)[0] or "x_1" not in text
        parse_verilog(text)  # must be legal Verilog again


BENCH = """
# c17-like
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
t1 = NAND(a, b)
t2 = NAND(b, c)
y = NAND(t1, t2)
"""


class TestBenchIO:
    def test_parse_bench(self):
        g = parse_bench(BENCH)
        assert g.num_inputs == 3
        assert g.num_outputs == 1
        out = g.evaluate_bits({"a": 1, "b": 1, "c": 0})
        assert out["y"] == (1 - ((1 - (1 & 1)) & (1 - (1 & 0))))

    @pytest.mark.parametrize("seed", range(4))
    def test_bench_roundtrip(self, seed):
        g = random_dag(5, 30, 2, seed=seed)
        back = parse_bench(write_bench(g))
        assert graphs_equivalent(g, back)

    def test_multi_input_expansion(self):
        g = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)\n"
        )
        assert g.evaluate_bits({"a": 1, "b": 1, "c": 1})["y"] == 1
        assert g.evaluate_bits({"a": 1, "b": 0, "c": 1})["y"] == 0

    def test_dff_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")

    def test_undefined_net_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")

    def test_no_outputs_rejected(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\n")

    def test_verilog_bench_cross_format(self):
        g = parse_verilog(SIMPLE)
        back = parse_bench(write_bench(g))
        assert graphs_equivalent(g, back)
