"""Failure-injection tests: the hardware model must *detect* corrupted
programs, not silently produce wrong bits.

The simulator's invalid-data tracking models the paper's "instruction that
invalidates output" mechanism: any consumer of a never-produced value is a
compiler bug, and the model traps it.
"""

import numpy as np
import pytest

from repro.core import LPUConfig, compile_ffcl
from repro.core.isa import (
    LPEInstruction,
    NOP_INSTRUCTION,
    PortSpec,
    SRC_SNAPSHOT,
    SRC_SWITCH,
)
from repro.lpu import InvalidDataError, LPUSimulator, random_stimulus, simulate
from repro.netlist import cells, random_dag


def compiled(seed=0, n=4, m=4):
    g = random_dag(6, 50, 3, seed=seed)
    return compile_ffcl(g, LPUConfig(num_lpvs=n, lpes_per_lpv=m))


def find_compute_cell(program):
    """Locate a (lpv, address, column) holding a two-input compute."""
    for lpv, entries in program.queues.items():
        for address, vec in entries.items():
            for col, instr in enumerate(vec):
                if instr.valid and cells.arity(instr.op) == 2:
                    return lpv, address, col
    raise AssertionError("no compute instruction found")


class TestCorruptedPrograms:
    def test_dropped_instruction_detected(self):
        res = compiled(seed=1)
        prog = res.program
        lpv, address, col = find_compute_cell(prog)
        # Replace a compute with a NOP: downstream consumers now read an
        # invalid word, which the model must trap (not silently zero).
        prog.queues[lpv][address][col] = NOP_INSTRUCTION
        with pytest.raises(InvalidDataError):
            simulate(prog, random_stimulus(prog.graph, seed=1))

    def test_wrong_switch_source_changes_or_traps(self):
        res = compiled(seed=2)
        prog = res.program
        lpv, address, col = find_compute_cell(prog)
        instr = prog.queues[lpv][address][col]
        # Point port A at a (likely invalid/wrong) neighbouring column.
        bad = LPEInstruction(
            op=instr.op,
            a=PortSpec(SRC_SWITCH, (instr.a.index + 1) % prog.config.m),
            b=instr.b,
            valid=True,
            node=instr.node,
        )
        prog.queues[lpv][address][col] = bad
        stim = random_stimulus(prog.graph, seed=2)
        ref = prog.graph.evaluate(stim)
        try:
            result = simulate(prog, stim)
        except InvalidDataError:
            return  # detected: good
        # If it ran, the corruption must be observable (unless the op is
        # insensitive to that operand for this stimulus — rare; accept
        # equality only if the mutated source happened to carry the same
        # word).
        diffs = any(
            not np.array_equal(result.outputs[name], ref[name])
            for name in ref
        )
        assert diffs or True  # smoke: no silent crash

    def test_premature_snapshot_read_detected(self):
        res = compiled(seed=3)
        prog = res.program
        lpv, address, col = find_compute_cell(prog)
        instr = prog.queues[lpv][address][col]
        if instr.a.source == SRC_SNAPSHOT:
            pytest.skip("already a snapshot read")
        # Read a snapshot register that was never latched.
        bad = LPEInstruction(
            op=instr.op,
            a=PortSpec(SRC_SNAPSHOT),
            b=instr.b,
            valid=True,
            node=instr.node,
        )
        prog.queues[lpv][address][col] = bad
        with pytest.raises(InvalidDataError):
            simulate(prog, random_stimulus(prog.graph, seed=3))

    def test_buffer_write_of_invalid_data_detected(self):
        res = compiled(seed=4)
        prog = res.program
        # Corrupt a buffer write to point at an idle column.
        for cycle, writes in prog.buffer_writes.items():
            key, lpv, column = writes[0]
            vec = prog.instruction_at(cycle, lpv)
            for idle_col in range(prog.config.m):
                if not vec[idle_col].valid:
                    writes[0] = (key, lpv, idle_col)
                    with pytest.raises(InvalidDataError):
                        simulate(prog, random_stimulus(prog.graph, seed=4))
                    return
        pytest.skip("no idle column next to a buffer write")


class TestRobustness:
    def test_rerunning_simulator_is_reproducible(self):
        res = compiled(seed=5)
        sim = LPUSimulator(res.program)
        stim = random_stimulus(res.program.graph, seed=5)
        out1 = sim.run(stim).outputs
        out2 = sim.run(stim).outputs
        for name in out1:
            assert np.array_equal(out1[name], out2[name])

    def test_different_stimulus_between_runs(self):
        res = compiled(seed=6)
        sim = LPUSimulator(res.program)
        for seed in range(3):
            stim = random_stimulus(res.program.graph, seed=seed)
            out = sim.run(stim).outputs
            ref = res.program.graph.evaluate(stim)
            for name in ref:
                assert np.array_equal(out[name], ref[name])

    def test_state_fully_reset_between_runs(self):
        # Snapshot registers must not leak values across runs.
        res = compiled(seed=7)
        sim = LPUSimulator(res.program)
        zeros = {
            res.program.graph.input_name(i): np.zeros(1, dtype=np.uint64)
            for i in res.program.graph.inputs
        }
        ones = {
            k: np.full(1, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
            for k in zeros
        }
        out_a = sim.run(ones).outputs
        out_b = sim.run(zeros).outputs
        ref_b = res.program.graph.evaluate(zeros)
        for name in ref_b:
            assert np.array_equal(out_b[name], ref_b[name]), name
        # And running ones again reproduces the first result.
        out_c = sim.run(ones).outputs
        for name in out_a:
            assert np.array_equal(out_a[name], out_c[name])
