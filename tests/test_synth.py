"""Tests for the synthesis passes: simplify, rebalance, techmap, levelize,
balance (FPB), and the preprocess pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import cells, graphs_equivalent, random_dag, random_layered_dag
from repro.netlist.graph import LogicGraph
from repro.synth import (
    balance,
    is_levelized_strict,
    levelize,
    map_to_basis,
    mapped_area,
    mapped_delay,
    preprocess,
    simplify,
    UnmappableError,
)
from repro.synth.rebalance import balance_trees


class TestSimplify:
    def test_constant_folding(self):
        g = LogicGraph()
        a = g.add_input("a")
        zero = g.add_const(0)
        g.set_output("y", g.add_gate(cells.AND, a, zero))
        s = simplify(g)
        assert s.num_gates == 0  # y is constant 0
        assert s.evaluate_bits({"a": 1})["y"] == 0

    def test_or_with_one_is_one(self):
        g = LogicGraph()
        a = g.add_input("a")
        one = g.add_const(1)
        g.set_output("y", g.add_gate(cells.OR, a, one))
        assert simplify(g).evaluate_bits({"a": 0})["y"] == 1

    def test_xor_self_is_zero(self):
        g = LogicGraph()
        a = g.add_input("a")
        g.set_output("y", g.add_gate(cells.XOR, a, a))
        s = simplify(g)
        assert s.num_gates == 0
        assert s.evaluate_bits({"a": 1})["y"] == 0

    def test_double_negation_removed(self):
        g = LogicGraph()
        a = g.add_input("a")
        n1 = g.add_gate(cells.NOT, a)
        n2 = g.add_gate(cells.NOT, n1)
        g.set_output("y", n2)
        s = simplify(g)
        assert s.num_gates == 0
        assert s.evaluate_bits({"a": 1})["y"] == 1

    def test_buf_elimination(self):
        g = LogicGraph()
        a = g.add_input("a")
        b = g.add_input("b")
        buf = g.add_gate(cells.BUF, a)
        g.set_output("y", g.add_gate(cells.AND, buf, b))
        s = simplify(g)
        assert all(n.op != cells.BUF for n in s.nodes.values())

    def test_cse_merges_duplicates(self):
        g = LogicGraph()
        a = g.add_input("a")
        b = g.add_input("b")
        x1 = g.add_gate(cells.AND, a, b)
        x2 = g.add_gate(cells.AND, b, a)  # commutative duplicate
        g.set_output("y", g.add_gate(cells.OR, x1, x2))
        s = simplify(g)
        # OR(x, x) -> x, so a single AND remains.
        assert s.num_gates == 1

    def test_x_and_not_x(self):
        g = LogicGraph()
        a = g.add_input("a")
        na = g.add_gate(cells.NOT, a)
        g.set_output("y", g.add_gate(cells.AND, a, na))
        s = simplify(g)
        assert s.evaluate_bits({"a": 0})["y"] == 0
        assert s.evaluate_bits({"a": 1})["y"] == 0
        assert s.num_gates == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_equivalence_random(self, seed):
        g = random_dag(7, 80, 4, seed=seed)
        assert graphs_equivalent(g, simplify(g))

    @pytest.mark.parametrize("seed", range(4))
    def test_idempotent(self, seed):
        g = random_dag(6, 50, 3, seed=seed)
        once = simplify(g)
        twice = simplify(once)
        assert twice.num_gates == once.num_gates

    @pytest.mark.parametrize("seed", range(4))
    def test_never_grows(self, seed):
        g = random_dag(6, 60, 3, seed=seed)
        assert simplify(g).num_gates <= g.num_gates


class TestRebalance:
    def test_flattens_or_chain(self):
        g = LogicGraph()
        pis = [g.add_input(f"x{i}") for i in range(8)]
        acc = pis[0]
        for p in pis[1:]:
            acc = g.add_gate(cells.OR, acc, p)
        g.set_output("y", acc)
        assert g.depth() == 7
        b = balance_trees(g)
        assert b.depth() == 3  # log2(8)
        assert graphs_equivalent(g, b)

    def test_preserves_shared_nodes(self):
        g = LogicGraph()
        a, b, c = (g.add_input(n) for n in "abc")
        shared = g.add_gate(cells.AND, a, b)
        u = g.add_gate(cells.AND, shared, c)
        g.set_output("y1", u)
        g.set_output("y2", shared)  # shared is a PO: must survive
        bal = balance_trees(g)
        assert graphs_equivalent(g, bal)

    @pytest.mark.parametrize("seed", range(8))
    def test_equivalence_random(self, seed):
        g = random_dag(8, 70, 3, seed=seed)
        assert graphs_equivalent(g, balance_trees(g))

    @pytest.mark.parametrize("seed", range(4))
    def test_never_deepens(self, seed):
        g = random_dag(8, 70, 3, seed=seed)
        assert balance_trees(g).depth() <= g.depth()


class TestTechmap:
    def test_map_to_nand_only(self):
        g = random_dag(5, 30, 2, seed=0)
        mapped = map_to_basis(g, {cells.NAND})
        ops = {n.op for n in mapped.nodes.values() if n.op in cells.LPE_OPS}
        assert ops <= {cells.NAND, cells.BUF}
        assert graphs_equivalent(g, mapped)

    def test_map_to_nor_only(self):
        g = random_dag(5, 30, 2, seed=1)
        mapped = map_to_basis(g, {cells.NOR})
        ops = {n.op for n in mapped.nodes.values() if n.op in cells.LPE_OPS}
        assert ops <= {cells.NOR, cells.BUF}
        assert graphs_equivalent(g, mapped)

    def test_map_to_and_not(self):
        g = random_dag(5, 30, 2, seed=2)
        mapped = map_to_basis(g, {cells.AND, cells.NOT})
        ops = {n.op for n in mapped.nodes.values() if n.op in cells.LPE_OPS}
        assert ops <= {cells.AND, cells.NOT, cells.BUF}
        assert graphs_equivalent(g, mapped)

    def test_incomplete_basis_rejected(self):
        g = random_dag(5, 30, 2, seed=3)
        with pytest.raises(UnmappableError):
            map_to_basis(g, {cells.AND, cells.OR})  # no inversion

    def test_identity_mapping_cheap(self):
        g = random_dag(5, 30, 2, seed=4)
        mapped = map_to_basis(g, cells.LPE_OPS)
        assert mapped.num_gates <= g.num_gates  # CSE may even shrink it

    def test_area_delay_positive(self):
        g = random_dag(5, 30, 2, seed=5)
        assert mapped_area(g) > 0
        assert mapped_delay(g) > 0


class TestLevelizeBalance:
    def test_levelization_groups(self):
        g = random_layered_dag(5, [4, 3, 2], seed=0)
        lv = levelize(g)
        assert lv.max_level == 3
        assert lv.width(1) == 4
        assert lv.max_width() == 4

    def test_unbalanced_graph_not_strict(self):
        g = LogicGraph()
        a, b, c = (g.add_input(n) for n in "abc")
        ab = g.add_gate(cells.AND, a, b)
        # c jumps from level 0 to level 2: not strict.
        y = g.add_gate(cells.OR, ab, c)
        g.set_output("y", y)
        assert not is_levelized_strict(g)

    def test_balance_makes_strict(self):
        for seed in range(5):
            g = random_dag(6, 50, 3, seed=seed)
            balanced, report = balance(g)
            assert is_levelized_strict(balanced)
            assert graphs_equivalent(g, balanced)
            assert report.buffers_inserted == (
                balanced.num_gates - g.num_gates
            )

    def test_balance_shares_buffer_chains(self):
        # One node fanning out to two consumers at the same later level
        # should be lifted once, not twice.
        g = LogicGraph()
        a, b, c = (g.add_input(n) for n in "abc")
        ab = g.add_gate(cells.AND, a, b)
        deep1 = g.add_gate(cells.AND, ab, c)
        deep2 = g.add_gate(cells.OR, deep1, c)
        y1 = g.add_gate(cells.AND, deep2, a)
        y2 = g.add_gate(cells.OR, deep2, b)
        g.set_output("y1", y1)
        g.set_output("y2", y2)
        balanced, report = balance(g)
        assert is_levelized_strict(balanced)
        # a and b each need a 3-deep chain to reach level 3; shared lifting
        # keeps the buffer count at the minimum.
        buf_count = sum(
            1 for n in balanced.nodes.values() if n.op == cells.BUF
        )
        assert buf_count == report.buffers_inserted

    def test_pos_at_common_level(self):
        g = LogicGraph()
        a, b = g.add_input("a"), g.add_input("b")
        shallow = g.add_gate(cells.AND, a, b)
        deep = g.add_gate(cells.OR, g.add_gate(cells.NOT, shallow), b)
        g.set_output("shallow", shallow)
        g.set_output("deep", deep)
        balanced, _ = balance(g)
        lv = balanced.levels()
        levels = {lv[nid] for _, nid in balanced.outputs}
        assert len(levels) == 1


class TestPreprocess:
    @pytest.mark.parametrize("seed", range(5))
    def test_preprocess_equivalence(self, seed):
        g = random_dag(7, 70, 4, seed=seed)
        result = preprocess(g)
        assert is_levelized_strict(result.graph)
        assert graphs_equivalent(g, result.graph)

    def test_preprocess_without_optimize(self):
        g = random_dag(6, 40, 2, seed=0)
        result = preprocess(g, optimize=False)
        assert is_levelized_strict(result.graph)
        assert graphs_equivalent(g, result.graph)

    def test_preprocess_with_basis(self):
        g = random_dag(6, 40, 2, seed=1)
        result = preprocess(g, basis=frozenset({cells.NAND}))
        ops = {
            n.op
            for n in result.graph.nodes.values()
            if n.op in cells.MISO_OPS | {cells.NOT}
        }
        assert ops <= {cells.NAND}
        assert graphs_equivalent(g, result.graph)

    def test_report_fields(self):
        g = random_dag(6, 40, 2, seed=2)
        result = preprocess(g)
        rep = result.report
        assert rep.gates_in == 40
        assert rep.gates_out == result.graph.num_gates
        assert rep.depth_out == result.levels.max_level
        assert "preprocess" in str(rep)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 5000),
    gates=st.integers(5, 60),
    inputs=st.integers(2, 7),
)
def test_property_preprocess_preserves_function(seed, gates, inputs):
    """preprocess = simplify+rebalance+FPB never changes the function."""
    g = random_dag(inputs, gates, 2, seed=seed)
    result = preprocess(g)
    assert graphs_equivalent(g, result.graph)
    assert is_levelized_strict(result.graph)
