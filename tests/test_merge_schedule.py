"""Tests for MFG merging (Algorithm 3) and scheduling (Algorithm 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import random_dag, random_tree
from repro.core import (
    LPUConfig,
    build_schedule,
    check_level,
    merge_pair,
    merge_partition,
    merging_report,
    partition,
    schedule_summary,
)
from repro.synth import preprocess


def make_partition(seed=0, gates=60, m=3, inputs=6, outputs=3):
    g = preprocess(random_dag(inputs, gates, outputs, seed=seed)).graph
    return partition(g, m)


class TestCheckLevel:
    def test_same_shape_small_mfgs_mergeable(self):
        part = make_partition(seed=1, m=2)
        # Find two sibling MFGs with the same bottom level.
        for mfg in part.mfgs:
            buckets = {}
            for child in mfg.children:
                buckets.setdefault(child.bottom_level, []).append(child)
            for group in buckets.values():
                if len(group) >= 2:
                    a, b = group[0], group[1]
                    expected = all(
                        len(a.nodes_by_level[l] | b.nodes_by_level[l]) <= 2
                        for l in a.levels()
                    )
                    assert check_level(a, b, 2) == expected
                    return
        pytest.skip("no sibling pair in this partition")

    def test_different_bottom_levels_rejected(self):
        part = make_partition(seed=2, m=2)
        levels = {}
        for mfg in part.mfgs:
            levels.setdefault(mfg.bottom_level, mfg)
        keys = sorted(levels)
        if len(keys) < 2:
            pytest.skip("single bottom level")
        assert not check_level(levels[keys[0]], levels[keys[1]], 100)


class TestMergePair:
    def test_union_semantics(self):
        part = make_partition(seed=3, m=2)
        pair = None
        for mfg in part.mfgs:
            for c1 in mfg.children:
                for c2 in mfg.children:
                    if c1.uid < c2.uid and c1.bottom_level == c2.bottom_level:
                        pair = (c1, c2)
                        break
        if pair is None:
            pytest.skip("no mergeable siblings")
        a, b = pair
        merged = merge_pair(a, b, uid=9999)
        assert merged.roots == a.roots | b.roots
        assert merged.input_nodes == a.input_nodes | b.input_nodes
        for level in merged.levels():
            assert merged.nodes_by_level[level] == (
                a.nodes_by_level[level] | b.nodes_by_level[level]
            )


class TestMergePartition:
    @pytest.mark.parametrize("seed", range(5))
    def test_invariants_after_merge(self, seed):
        part = make_partition(seed=seed, m=3)
        merged = merge_partition(part)
        merged.check_invariants()

    @pytest.mark.parametrize("seed", range(5))
    def test_never_increases_mfg_count(self, seed):
        part = make_partition(seed=seed, m=3)
        before = part.num_mfgs
        merged = merge_partition(part)
        assert merged.num_mfgs <= before

    def test_merging_reduces_duplicated_cones(self):
        # Trees of width <= m merge heavily at the root group.
        g = preprocess(random_dag(8, 80, 4, seed=10)).graph
        part = partition(g, 8)
        before = part.num_mfgs
        merged = merge_partition(part)
        assert merged.num_mfgs < before

    def test_single_parent_preserved(self):
        part = make_partition(seed=6, m=2)
        merged = merge_partition(part)
        for mfg in merged.mfgs:
            assert len(mfg.parents) <= 1

    def test_report_ratios(self):
        part = make_partition(seed=7, m=3)
        before_count = part.num_mfgs
        merged = merge_partition(part)
        report = merging_report(part, merged)
        assert report["mfgs_before"] == before_count
        assert report["mfgs_after"] == merged.num_mfgs
        assert report["mfg_reduction"] >= 1.0


class TestSchedule:
    @pytest.mark.parametrize("policy", ["pipelined", "sequential"])
    @pytest.mark.parametrize("seed", range(4))
    def test_invariants(self, policy, seed):
        part = merge_partition(make_partition(seed=seed, m=3))
        cfg = LPUConfig(num_lpvs=4, lpes_per_lpv=3)
        sched = build_schedule(part, cfg, policy=policy)
        sched.check_invariants()

    def test_sequential_equals_sum_of_spans(self):
        part = merge_partition(make_partition(seed=1, m=3))
        cfg = LPUConfig(num_lpvs=4, lpes_per_lpv=3)
        sched = build_schedule(part, cfg, policy="sequential")
        assert sched.makespan == part.total_macro_cycles_sequential()

    def test_pipelined_never_slower_than_sequential(self):
        for seed in range(4):
            part = merge_partition(make_partition(seed=seed, m=3))
            cfg = LPUConfig(num_lpvs=4, lpes_per_lpv=3)
            pipelined = build_schedule(part, cfg, policy="pipelined")
            part2 = merge_partition(make_partition(seed=seed, m=3))
            sequential = build_schedule(part2, cfg, policy="sequential")
            assert pipelined.makespan <= sequential.makespan

    def test_memloc_sharing_with_most_recent_child(self):
        """An MFG issued back-to-back after its most recent child reads the
        same instruction-queue address (the paper's memLoc compression)."""
        part = merge_partition(make_partition(seed=3, m=3))
        cfg = LPUConfig(num_lpvs=8, lpes_per_lpv=3)
        sched = build_schedule(part, cfg)
        shared = 0
        for item in sched.items:
            for child in item.mfg.children:
                child_item = sched.by_uid[child.uid]
                if child_item.finish_cycle + 1 == item.issue_cycle:
                    # Same diagonal -> same raw address set start.
                    if set(item.mem_locs) & set(child_item.mem_locs):
                        shared += 1
        assert shared > 0

    def test_queue_depth_bounded_by_makespan(self):
        part = merge_partition(make_partition(seed=2, m=3))
        cfg = LPUConfig(num_lpvs=4, lpes_per_lpv=3)
        sched = build_schedule(part, cfg)
        assert 1 <= sched.queue_depth <= sched.makespan + cfg.num_lpvs

    def test_circulation_counted_for_deep_graphs(self):
        g = preprocess(random_tree(64, seed=0)).graph  # depth 6
        part = partition(g, 4)
        cfg = LPUConfig(num_lpvs=2, lpes_per_lpv=4)
        sched = build_schedule(part, cfg)
        assert sched.circulations > 0

    def test_no_circulation_when_pipeline_deep_enough(self):
        g = preprocess(random_tree(16, seed=0)).graph  # depth 4
        part = partition(g, 8)
        cfg = LPUConfig(num_lpvs=8, lpes_per_lpv=8)
        sched = build_schedule(part, cfg)
        assert sched.circulations == 0

    def test_unknown_policy_rejected(self):
        part = make_partition(seed=0, m=3)
        with pytest.raises(ValueError):
            build_schedule(part, LPUConfig(), policy="magic")

    def test_summary_consistency(self):
        part = merge_partition(make_partition(seed=4, m=3))
        cfg = LPUConfig(num_lpvs=4, lpes_per_lpv=3)
        sched = build_schedule(part, cfg)
        s = schedule_summary(sched)
        assert s["makespan_macro_cycles"] == sched.makespan
        assert s["total_clock_cycles"] == sched.makespan * cfg.t_c
        assert s["fps"] == pytest.approx(cfg.fps(sched.makespan))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 3000),
    m=st.integers(1, 6),
    n=st.integers(1, 8),
    merge=st.booleans(),
)
def test_property_schedule_valid(seed, m, n, merge):
    """Any partition schedules without collisions and honors dependencies."""
    g = preprocess(random_dag(5, 40, 2, seed=seed)).graph
    if g.num_gates == 0:
        return
    part = partition(g, m)
    if merge:
        part = merge_partition(part)
    cfg = LPUConfig(num_lpvs=n, lpes_per_lpv=m)
    sched = build_schedule(part, cfg)
    sched.check_invariants()
    assert sched.makespan >= max(mfg.span for mfg in part.mfgs)
