"""Tests for format-v2 bundles and the pipelined whole-model executor.

The load-bearing invariants:

* **format negotiation** — the reader registry dispatches v1 and v2
  containers to their readers, v1 artifacts keep loading byte-for-byte
  identically, and an unknown version fails with the precise
  "reader registry has {...}" error,
* **bundle round trips** — container bytes are deterministic, member
  programs are embedded as verbatim v1 containers, and the manifest is
  re-validated against the decoded graphs,
* **bit-identity** — :class:`PipelineExecutor` outputs AND statistics
  equal the serial per-stage reference for every batch, in request
  order, at every queue depth,
* **serving integration** — an :class:`InferenceServer` (and a fabric
  node) serves a bundle through the pipeline pool with per-stage
  occupancy in its stats,
* **CLI** — ``compile --bundle`` / ``inspect [--verify]`` /
  ``throughput --artifact`` / ``serve-bench --artifact`` round-trip a
  bundle end to end.
"""

import json
import os

import numpy as np
import pytest

from repro.artifact import (
    ArtifactBundle,
    ArtifactError,
    ExecutableArtifact,
    SINGLE_PROGRAM_VERSION,
    bundle_model,
    load_artifact,
    load_artifact_bytes,
    peek_header,
    reader_versions,
)
from repro.artifact.codec import content_fingerprint, pack_container
from repro.core import LPUConfig, compile_ffcl
from repro.lpu import evaluate_graph, random_stimulus
from repro.netlist import random_dag
from repro.pipeline import PipelineExecutor, SerialChainRunner
from repro.serve import InferenceServer, ServeConfig, naive_serve

SMALL = LPUConfig(num_lpvs=4, lpes_per_lpv=8)

WIDTH = 4


def _chain_graphs(stages=3, gates=24, seed=0):
    return [
        random_dag(WIDTH, gates, WIDTH, seed=seed + i) for i in range(stages)
    ]


def _wirings(stages):
    return [{f"x{j}": f"y{j}" for j in range(WIDTH)}] * (stages - 1)


@pytest.fixture(scope="module")
def bundle():
    graphs = _chain_graphs()
    return bundle_model(
        graphs, SMALL, wirings=_wirings(3), name="chain", probe_words=2
    )


def _assert_identical(a, b):
    assert set(a.outputs) == set(b.outputs)
    for name in a.outputs:
        assert np.array_equal(a.outputs[name], b.outputs[name]), name
    assert a.macro_cycles == b.macro_cycles
    assert a.clock_cycles == b.clock_cycles
    assert (
        a.compute_instructions_executed == b.compute_instructions_executed
    )
    assert a.switch_routes == b.switch_routes
    assert a.peak_buffer_words == b.peak_buffer_words
    assert a.buffer_writes == b.buffer_writes


class TestFormatNegotiation:
    def test_registry_has_both_generations(self):
        assert reader_versions() == (1, 2)

    def test_v1_loads_byte_identically_through_registry(self):
        art = compile_ffcl(random_dag(4, 20, 2, seed=1), SMALL).to_artifact()
        data = art.to_bytes()
        loaded = load_artifact_bytes(data)
        assert isinstance(loaded, ExecutableArtifact)
        assert loaded.to_bytes() == data
        assert peek_header(data)["format_version"] == SINGLE_PROGRAM_VERSION

    def test_v2_dispatches_to_bundle_reader(self, bundle):
        loaded = load_artifact_bytes(bundle.to_bytes())
        assert isinstance(loaded, ArtifactBundle)
        assert loaded.fingerprint == bundle.fingerprint

    def test_unknown_version_error_is_precise(self):
        art = compile_ffcl(random_dag(4, 20, 2, seed=2), SMALL).to_artifact()
        header, arrays = art._encode()
        header["format_version"] = 3
        header["fingerprint"] = content_fingerprint(header, arrays)
        data = pack_container(header, arrays)
        with pytest.raises(
            ArtifactError,
            match=r"format v3 not supported, reader registry has \{1, 2\}",
        ):
            load_artifact_bytes(data)
        # The header stays peekable for diagnostics either way.
        assert peek_header(data)["format_version"] == 3

    def test_single_program_reader_redirects_bundles(self, bundle):
        with pytest.raises(ArtifactError, match="load_artifact"):
            ExecutableArtifact.from_bytes(bundle.to_bytes())

    def test_load_artifact_from_disk(self, bundle, tmp_path):
        path = str(tmp_path / "model.lpa")
        bundle.save(path)
        loaded = load_artifact(path)
        assert isinstance(loaded, ArtifactBundle)
        assert loaded.to_bytes() == bundle.to_bytes()


class TestBundleFormat:
    def test_round_trip_is_deterministic(self, bundle):
        data = bundle.to_bytes()
        loaded = ArtifactBundle.from_bytes(data)
        assert loaded.to_bytes() == data
        assert [link.name for link in loaded.links] == [
            link.name for link in bundle.links
        ]
        assert loaded.external_inputs == bundle.external_inputs
        assert loaded.outputs == bundle.outputs

    def test_members_embed_verbatim_v1_containers(self, bundle):
        loaded = ArtifactBundle.from_bytes(bundle.to_bytes())
        for member, decoded in zip(bundle.members, loaded.members):
            assert member.to_bytes() == decoded.to_bytes()
            assert decoded.summary()["format_version"] == (
                SINGLE_PROGRAM_VERSION
            )

    def test_summary_is_jsonable(self, bundle):
        summary = bundle.summary()
        json.dumps(summary)
        assert summary["format_version"] == 2
        assert len(summary["stages"]) == 3
        assert summary["stages"][1]["wired"] == {
            f"x{j}": f"y{j}" for j in range(WIDTH)
        }

    def test_corruption_detected(self, bundle):
        data = bytearray(bundle.to_bytes())
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(ArtifactError):
            ArtifactBundle.from_bytes(bytes(data))

    def test_wirings_length_must_match(self):
        graphs = _chain_graphs()
        arts = [
            compile_ffcl(g, SMALL).to_artifact() for g in graphs
        ]
        with pytest.raises(ArtifactError, match="stage transition"):
            ArtifactBundle.from_members(arts, wirings=[_wirings(3)[0]])

    def test_unknown_pi_in_wiring_rejected(self):
        arts = [
            compile_ffcl(g, SMALL).to_artifact()
            for g in _chain_graphs(stages=2)
        ]
        with pytest.raises(ArtifactError, match="unknown"):
            ArtifactBundle.from_members(
                arts, wirings=[{"nonexistent": "y0"}]
            )

    def test_dangling_po_in_wiring_rejected(self):
        arts = [
            compile_ffcl(g, SMALL).to_artifact()
            for g in _chain_graphs(stages=2)
        ]
        with pytest.raises(ArtifactError, match="do not exist"):
            ArtifactBundle.from_members(arts, wirings=[{"x0": "nope"}])

    def test_shadowed_external_rejected(self):
        # Stage 2's PIs are named like stage 1's POs, but the explicit
        # wiring covers only one of them — the other would silently
        # become an external input shadowing a driven signal.
        with pytest.raises(ArtifactError, match="external although"):
            _shadow_case()

    def test_verify_probes_replays_the_chain(self, bundle):
        report = bundle.verify_probes()
        assert report["passed"] is True
        assert report["stages"] == 3
        assert report["mismatches"] == []

    def test_reference_graph_matches_functional_composition(self, bundle):
        graph = bundle.reference_graph()
        stim = random_stimulus(graph, array_size=2, seed=7)
        expected = evaluate_graph(graph, stim)
        runner = SerialChainRunner(bundle)
        result = runner.run(stim)
        for name, words in expected.items():
            assert np.array_equal(result.outputs[name], words)


def _shadow_case():
    """Stage 1 drives POs named like stage 2 PIs, but the wiring leaves
    one of them external — packaging must refuse the ambiguity."""
    from repro.netlist import cells
    from repro.netlist.graph import LogicGraph

    first = random_dag(WIDTH, 20, WIDTH, seed=11)
    second = LogicGraph("second")
    a = second.add_input("y0")
    b = second.add_input("y1")
    second.set_output("z0", second.add_gate(cells.AND, a, b))
    arts = [
        compile_ffcl(first, SMALL).to_artifact(),
        compile_ffcl(second, SMALL).to_artifact(),
    ]
    # y1 stays external although stage 1 drives a PO named y1.
    ArtifactBundle.from_members(arts, wirings=[{"y0": "y0"}])


class TestPipelineExecutor:
    def test_bit_identity_and_order(self, bundle):
        graph = bundle.reference_graph()
        stimuli = [
            random_stimulus(graph, array_size=1 + i % 3, seed=i)
            for i in range(10)
        ]
        runner = SerialChainRunner(bundle)
        with PipelineExecutor(bundle, depth=2) as executor:
            results = executor.map(stimuli)
        assert len(results) == len(stimuli)
        for stim, piped in zip(stimuli, results):
            _assert_identical(runner.run(stim), piped)

    @pytest.mark.parametrize("depth", [1, 4])
    def test_depth_is_correctness_neutral(self, bundle, depth):
        graph = bundle.reference_graph()
        stimuli = [
            random_stimulus(graph, array_size=2, seed=40 + i)
            for i in range(6)
        ]
        runner = SerialChainRunner(bundle)
        with PipelineExecutor(bundle, depth=depth) as executor:
            for stim, piped in zip(stimuli, executor.map(stimuli)):
                _assert_identical(runner.run(stim), piped)
            board = executor.scoreboard.as_dict()
        assert board["retired"] == board["submitted"] == len(stimuli)
        assert board["in_flight"] == 0

    def test_run_serial_matches_pipeline(self, bundle):
        graph = bundle.reference_graph()
        stim = random_stimulus(graph, array_size=2, seed=77)
        with PipelineExecutor(bundle) as executor:
            _assert_identical(executor.run_serial(stim), executor.run(stim))

    def test_every_registry_engine(self, bundle):
        graph = bundle.reference_graph()
        stim = random_stimulus(graph, array_size=2, seed=5)
        expected = evaluate_graph(graph, stim)
        for engine in ("cycle", "trace", "fused", "delta", "native"):
            with PipelineExecutor(bundle, engine=engine) as executor:
                result = executor.run(stim)
            for name, words in expected.items():
                assert np.array_equal(result.outputs[name], words), (
                    engine,
                    name,
                )

    def test_input_validation(self, bundle):
        with PipelineExecutor(bundle) as executor:
            with pytest.raises(KeyError, match="missing"):
                executor.submit({})
            good = random_stimulus(
                bundle.reference_graph(), array_size=1, seed=0
            )
            with pytest.raises(KeyError, match="unknown"):
                executor.submit(dict(good, bogus=good["x0"]))

    def test_stats_shape(self, bundle):
        graph = bundle.reference_graph()
        with PipelineExecutor(bundle, depth=3) as executor:
            executor.map(
                [
                    random_stimulus(graph, array_size=1, seed=i)
                    for i in range(4)
                ]
            )
            stats = executor.stats()
        assert stats["depth"] == 3
        assert len(stats["stages"]) == 3
        for stage in stats["stages"]:
            assert set(stage) == {
                "stage",
                "engine",
                "batches",
                "words",
                "busy_seconds",
                "busy_fraction",
                "queue_depth_p50",
                "queue_depth_p99",
                "queue_depth_max",
            }
            assert stage["batches"] == 4
        board = stats["scoreboard"]
        assert board["submitted"] == board["retired"] == 4
        json.dumps(stats)

    def test_failed_batch_does_not_wedge_the_chain(self, bundle):
        graph = bundle.reference_graph()
        good = random_stimulus(graph, array_size=2, seed=1)
        # Mismatched word counts across PIs blow up inside a stage run;
        # the failure must surface on that future while later batches
        # keep flowing.
        bad = dict(good)
        bad["x0"] = np.zeros(7, dtype=np.uint64)
        runner = SerialChainRunner(bundle)
        with PipelineExecutor(bundle, depth=2) as executor:
            bad_future = executor.submit(bad)
            good_future = executor.submit(good)
            with pytest.raises(Exception):
                bad_future.result(timeout=30)
            _assert_identical(
                runner.run(good), good_future.result(timeout=30)
            )
            board = executor.scoreboard.as_dict()
            assert board["retired"] == 2
        with pytest.raises(RuntimeError, match="closed"):
            executor.submit(good)

    def test_close_is_idempotent(self, bundle):
        executor = PipelineExecutor(bundle)
        executor.close()
        executor.close()


class TestServingIntegration:
    def test_inference_server_serves_bundles(self, bundle):
        graph = bundle.reference_graph()
        requests = [
            random_stimulus(graph, array_size=1 + i % 2, seed=i)
            for i in range(8)
        ]
        serving = ServeConfig(pipeline_depth=2, max_wait_ms=0.5)
        with InferenceServer(bundle, serving=serving) as server:
            assert server.graph.name == graph.name
            served = server.map(requests)
            stats = server.stats()
        naive = naive_serve(bundle, requests)
        for a, b in zip(served, naive):
            _assert_identical(a, b)
        pool = stats["pool"]
        assert pool["backend"] == "pipeline"
        assert pool["placement"] == "chain"
        assert pool["num_workers"] == 3
        assert pool["depth"] == 2
        assert len(pool["stages"]) == 3
        assert pool["scoreboard"]["retired"] >= 1
        json.dumps(stats)

    def test_serve_bench_reports_pipeline_occupancy(self, bundle):
        from repro.serve import run_serve_bench

        report = run_serve_bench(
            bundle,
            serving=ServeConfig(pipeline_depth=2),
            requests=8,
            array_size=2,
            clients=2,
        )
        assert report["bit_identical"] is True
        assert report["pipeline"] is not None
        assert len(report["pipeline"]["stages"]) == 3
        assert report["macro_cycles_per_run"] == sum(
            m.program.schedule.makespan for m in bundle.members
        )
        json.dumps(report)

    def test_single_program_bench_has_no_pipeline_section(self):
        from repro.serve import run_serve_bench

        result = compile_ffcl(random_dag(4, 20, 2, seed=9), SMALL)
        report = run_serve_bench(
            result.program, requests=4, array_size=1, clients=1
        )
        assert report["pipeline"] is None

    def test_fabric_node_serves_a_bundle(self, bundle):
        from repro.serve.fabric import FabricClient, FabricNode

        graph = bundle.reference_graph()
        stim = random_stimulus(graph, array_size=2, seed=3)
        expected = SerialChainRunner(bundle).run(stim)
        with FabricNode(
            bundle, serving=ServeConfig(pipeline_depth=2)
        ) as node:
            with FabricClient(node.url) as client:
                result = client.infer(stim)
                health = client.health()
                stats = client.stats()
        for name in expected.outputs:
            assert np.array_equal(
                result.outputs[name], expected.outputs[name]
            )
        assert result.macro_cycles == expected.macro_cycles
        assert health["graph"] == graph.name
        assert stats["server"]["pool"]["backend"] == "pipeline"

    def test_vet_accepts_bundle_uploads(self, bundle):
        from repro.serve.fabric import FabricNode

        node = FabricNode.__new__(FabricNode)
        assert node._vet_artifact(bundle.to_bytes()) is None
        assert node._vet_artifact(b"garbage") is not None


class TestCLI:
    @pytest.fixture()
    def netlists(self, tmp_path):
        texts = [
            "INPUT(a)\nINPUT(b)\nOUTPUT(m0)\nOUTPUT(m1)\n"
            "m0 = AND(a, b)\nm1 = OR(a, b)\n",
            "INPUT(m0)\nINPUT(m1)\nINPUT(c)\nOUTPUT(n0)\n"
            "n0 = NAND(m0, m1)\n",
            "INPUT(n0)\nOUTPUT(z)\nz = NOT(n0)\n",
        ]
        paths = []
        for i, text in enumerate(texts):
            path = tmp_path / f"s{i}.bench"
            path.write_text(text)
            paths.append(str(path))
        return paths

    def test_compile_bundle_inspect_verify(
        self, netlists, tmp_path, capsys
    ):
        from repro.cli import main

        out = str(tmp_path / "model.lpa")
        assert main(
            ["compile", *netlists, "--bundle", "--lpvs", "4",
             "--lpes", "8", "-o", out]
        ) == 0
        assert "3 stages" in capsys.readouterr().out
        assert os.path.exists(out)

        loaded = load_artifact(out)
        assert isinstance(loaded, ArtifactBundle)
        assert loaded.num_stages == 3

        assert main(["inspect", out, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["format_version"] == 2
        assert summary["kind"] == "bundle"
        assert len(summary["stages"]) == 3

        assert main(["inspect", out, "--verify"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_multiple_netlists_require_bundle_flag(self, netlists):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--bundle"):
            main(["compile", *netlists])

    def test_throughput_and_serve_bench_on_bundle(
        self, netlists, tmp_path, capsys
    ):
        from repro.cli import main

        out = str(tmp_path / "model.lpa")
        assert main(
            ["compile", *netlists, "--bundle", "--lpvs", "4",
             "--lpes", "8", "-o", out]
        ) == 0
        capsys.readouterr()

        assert main(
            ["throughput", "--artifact", out, "--batches", "3",
             "--array-size", "2", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["bit_identical"] is True
        assert len(report["pipeline"]["stages"]) == 3

        assert main(
            ["serve-bench", "--artifact", out, "--requests", "6",
             "--clients", "2", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["bit_identical"] is True
        assert report["pipeline"] is not None

    def test_inspect_unknown_version_prints_header(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        art = compile_ffcl(random_dag(4, 20, 2, seed=4), SMALL).to_artifact()
        header, arrays = art._encode()
        header["format_version"] = 3
        header["fingerprint"] = content_fingerprint(header, arrays)
        path = str(tmp_path / "future.lpa")
        with open(path, "wb") as handle:
            handle.write(pack_container(header, arrays))

        assert main(["inspect", path]) == 1
        captured = capsys.readouterr()
        assert "v3" in captured.out
        assert "reader registry has {1, 2}" in captured.err

    def test_single_program_commands_reject_bundles(
        self, netlists, tmp_path, capsys
    ):
        from repro.cli import main

        out = str(tmp_path / "model.lpa")
        assert main(
            ["compile", *netlists, "--bundle", "--lpvs", "4",
             "--lpes", "8", "-o", out]
        ) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="multi-program bundle"):
            main(["simulate", "--artifact", out])
