"""Unit tests for the cell library (repro.netlist.cells)."""

import numpy as np
import pytest

from repro.netlist import cells


class TestOpSets:
    def test_partition_of_ops(self):
        # Source, SISO, and MISO ops partition the full op set.
        assert cells.SOURCE_OPS | cells.SISO_OPS | cells.MISO_OPS == cells.ALL_OPS
        assert not cells.SOURCE_OPS & cells.SISO_OPS
        assert not cells.SOURCE_OPS & cells.MISO_OPS
        assert not cells.SISO_OPS & cells.MISO_OPS

    def test_lpe_ops_exclude_sources(self):
        assert cells.INPUT not in cells.LPE_OPS
        assert cells.CONST0 not in cells.LPE_OPS
        assert cells.BUF in cells.LPE_OPS
        assert cells.AND in cells.LPE_OPS

    def test_arity(self):
        assert cells.arity(cells.INPUT) == 0
        assert cells.arity(cells.CONST1) == 0
        assert cells.arity(cells.NOT) == 1
        assert cells.arity(cells.BUF) == 1
        for op in cells.MISO_OPS:
            assert cells.arity(op) == 2

    def test_arity_unknown_op(self):
        with pytest.raises(ValueError):
            cells.arity("mux")


class TestTruthTables:
    @pytest.mark.parametrize("op", sorted(cells.MISO_OPS))
    def test_two_input_semantics_match_table(self, op):
        for a in (0, 1):
            for b in (0, 1):
                expected = cells.TWO_INPUT_TT[op][a * 2 + b]
                assert cells.eval_op_bits(op, a, b) == expected

    def test_not_and_buf_bits(self):
        assert cells.eval_op_bits(cells.NOT, 0) == 1
        assert cells.eval_op_bits(cells.NOT, 1) == 0
        assert cells.eval_op_bits(cells.BUF, 0) == 0
        assert cells.eval_op_bits(cells.BUF, 1) == 1

    def test_tt_to_op_roundtrip(self):
        for op, tt in cells.TWO_INPUT_TT.items():
            assert cells.TT_TO_OP[tt] == op

    @pytest.mark.parametrize("op", sorted(cells.MISO_OPS | cells.SISO_OPS))
    def test_complement_pairs(self, op):
        comp = cells.COMPLEMENT_OP[op]
        if cells.arity(op) == 1:
            for a in (0, 1):
                assert (
                    cells.eval_op_bits(op, a)
                    == 1 - cells.eval_op_bits(comp, a)
                )
        else:
            for a in (0, 1):
                for b in (0, 1):
                    assert (
                        cells.eval_op_bits(op, a, b)
                        == 1 - cells.eval_op_bits(comp, a, b)
                    )


class TestWordEvaluation:
    def test_word_ops_match_bit_ops(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 2**64, size=4, dtype=np.uint64)
        b = rng.integers(0, 2**64, size=4, dtype=np.uint64)
        for op in sorted(cells.MISO_OPS):
            out = cells.eval_op(op, a, b)
            for lane in range(8):  # spot-check 8 bit lanes
                bit_a = int((a[0] >> np.uint64(lane)) & np.uint64(1))
                bit_b = int((b[0] >> np.uint64(lane)) & np.uint64(1))
                bit_out = int((out[0] >> np.uint64(lane)) & np.uint64(1))
                assert bit_out == cells.eval_op_bits(op, bit_a, bit_b)

    def test_const_ops(self):
        base = np.zeros(3, dtype=np.uint64)
        assert np.all(cells.eval_op(cells.CONST0, base) == 0)
        assert np.all(
            cells.eval_op(cells.CONST1, base) == np.uint64(0xFFFFFFFFFFFFFFFF)
        )

    def test_wrong_operand_count_raises(self):
        a = np.zeros(1, dtype=np.uint64)
        with pytest.raises(ValueError):
            cells.eval_op(cells.AND, a)
        with pytest.raises(ValueError):
            cells.eval_op(cells.NOT, a, a)

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            cells.eval_op("mux", np.zeros(1, dtype=np.uint64))


class TestStandardCells:
    def test_every_lpe_op_has_a_cell(self):
        for op in cells.LPE_OPS:
            cell = cells.cell_for_op(op)
            assert cell.op == op
            assert cell.num_inputs == cells.arity(op)

    def test_source_ops_have_no_cell(self):
        with pytest.raises(ValueError):
            cells.cell_for_op(cells.INPUT)

    def test_area_ordering(self):
        # NAND/NOR are the cheapest two-input cells; XOR/XNOR the largest.
        assert (
            cells.STANDARD_CELLS["NAND2"].area
            < cells.STANDARD_CELLS["AND2"].area
            < cells.STANDARD_CELLS["XOR2"].area
        )
