"""Tests for the fault-tolerance layer (:mod:`repro.serve.faults`,
worker supervision, deadlines, and client resilience).

The load-bearing invariants:

* **determinism** — a seeded :class:`FaultPlan` fully determines the
  injected chaos: two injectors running the same plan against the same
  traffic produce identical event logs,
* **supervision** — a worker killed mid-load (thread poison or real
  child SIGKILL) is restarted and its batch re-placed; every request
  still completes bit-identical and the restart is visible in
  ``pool.stats()``,
* **typed failure** — under any seeded fault plan, every request
  through a fabric node either completes bit-identical to a direct
  run or fails with a *typed* error (``DeadlineExceeded`` /
  ``FabricRejected`` / ``CircuitOpen``) — never a silent wrong answer
  (property-tested),
* **client resilience** — deterministic backoff honours ``Retry-After``,
  the circuit breaker quarantines a dead node and half-open-probes it
  back, and a corrupt blob fetch is retried once then quarantined
  locally without ever deleting the peer's copy.
"""

import http.client
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifact import HTTPStoreBackend, MemoryStoreBackend
from repro.core import LPUConfig, compile_ffcl
from repro.engine import Session
from repro.lpu import random_stimulus
from repro.netlist import random_dag
from repro.serve import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    InferenceServer,
    ServeConfig,
    WorkerPool,
)
from repro.serve.fabric import (
    CircuitBreaker,
    CircuitOpen,
    FabricClient,
    FabricConfig,
    FabricNode,
    FabricRejected,
    RetryPolicy,
)
from repro.serve.scheduler import DeadlineExceeded

SMALL = LPUConfig(num_lpvs=4, lpes_per_lpv=8)

STAT_FIELDS = (
    "macro_cycles",
    "clock_cycles",
    "compute_instructions_executed",
    "switch_routes",
    "peak_buffer_words",
    "buffer_writes",
)


def assert_results_identical(expected, got):
    assert set(expected.outputs) == set(got.outputs)
    for name, words in expected.outputs.items():
        assert np.array_equal(words, got.outputs[name]), name
    for field in STAT_FIELDS:
        assert getattr(expected, field) == getattr(got, field), field


@pytest.fixture(scope="module")
def compiled():
    g = random_dag(5, 40, 2, seed=3)
    return compile_ffcl(g, SMALL).program


def _requests(graph, count, max_words=3):
    return [
        random_stimulus(graph, array_size=1 + i % max_words, seed=i)
        for i in range(count)
    ]


# ======================================================================
# FaultPlan / FaultInjector
# ======================================================================
class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor_strike", 0)
        with pytest.raises(ValueError, match="occurrence index"):
            FaultEvent("sever", -1)

    def test_builders_are_immutable(self):
        base = FaultPlan()
        grown = base.crash_worker(1, at=3).drop_response(at=5)
        assert len(base) == 0
        assert len(grown) == 2

    def test_seeded_is_deterministic(self):
        kwargs = dict(
            requests=50, workers=4, crashes=2, drop_rate=0.1, severs=3
        )
        a = FaultPlan.seeded(7, **kwargs)
        b = FaultPlan.seeded(7, **kwargs)
        c = FaultPlan.seeded(8, **kwargs)
        assert a.describe() == b.describe()
        assert a.describe() != c.describe()

    def test_injector_fires_at_exact_occurrence(self):
        plan = FaultPlan().crash_worker(2, at=1).sever_connection(at=0)
        injector = FaultInjector(plan)
        assert injector.pool_crash_target() is None  # occurrence 0
        assert injector.pool_crash_target() == 2     # occurrence 1
        assert injector.pool_crash_target() is None  # occurrence 2
        assert injector.client_sever() is True
        assert injector.client_sever() is False
        assert injector.event_log() == [
            ("pool.dispatch", 1, "crash_worker", 0.0),
            ("client.request", 0, "sever", 0.0),
        ]

    def test_same_plan_same_traffic_same_log(self):
        plan = FaultPlan.seeded(
            3, requests=20, drop_rate=0.3, delay_rate=0.2
        )
        logs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            for _ in range(20):
                injector.response_action()
            logs.append(injector.event_log())
        assert logs[0] == logs[1]
        assert len(logs[0]) == len(plan)

    def test_corrupt_flips_exactly_one_byte(self):
        injector = FaultInjector(FaultPlan().corrupt_blob(at=0, position=2))
        data = b"abcdef"
        mutated = injector.corrupt(data)
        assert mutated != data
        assert len(mutated) == len(data)
        diffs = [i for i in range(len(data)) if mutated[i] != data[i]]
        assert diffs == [2]
        # Next fetch passes through untouched.
        assert injector.corrupt(data) == data


# ======================================================================
# Worker supervision
# ======================================================================
class TestSupervision:
    @pytest.mark.parametrize(
        "backend",
        [
            "thread",
            pytest.param(
                "fork",
                marks=pytest.mark.skipif(
                    "fork"
                    not in __import__(
                        "multiprocessing"
                    ).get_all_start_methods(),
                    reason="process backend needs fork",
                ),
            ),
        ],
    )
    def test_killed_worker_restarts_and_batch_survives(
        self, compiled, backend
    ):
        session = Session(compiled)
        requests = _requests(compiled.graph, 8)
        expected = [session.run(r) for r in requests]
        plan = FaultPlan().crash_worker(0, at=2)
        injector = FaultInjector(plan)
        pool = WorkerPool(
            compiled,
            num_workers=2,
            backend=backend,
            injector=injector,
        )
        try:
            futures = [pool.submit(r) for r in requests]
            results = [f.result(timeout=60) for f in futures]
            for want, got in zip(expected, results):
                assert_results_identical(want, got)
            stats = pool.stats()
            assert stats["restarts"][0] == 1
            assert stats["total_restarts"] == 1
            assert injector.event_log() == [
                ("pool.dispatch", 2, "crash_worker", 0.0)
            ]
        finally:
            pool.close()

    def test_direct_kill_worker_is_survivable(self, compiled):
        session = Session(compiled)
        requests = _requests(compiled.graph, 6)
        expected = [session.run(r) for r in requests]
        pool = WorkerPool(compiled, num_workers=2, backend="thread")
        try:
            pool.kill_worker(1)
            futures = [pool.submit(r) for r in requests]
            for want, future in zip(expected, futures):
                assert_results_identical(want, future.result(timeout=60))
            assert pool.stats()["total_restarts"] >= 1
        finally:
            pool.close()

    def test_retries_are_bounded(self, compiled):
        # With the retry budget at zero, a worker death reaches the
        # caller as the typed WorkerCrashed instead of looping.
        from repro.serve import WorkerCrashed

        pool = WorkerPool(
            compiled,
            num_workers=1,
            backend="thread",
            injector=FaultInjector(FaultPlan().crash_worker(0, at=0)),
            max_batch_retries=0,
        )
        try:
            request = _requests(compiled.graph, 1)[0]
            with pytest.raises(WorkerCrashed):
                pool.submit(request).result(timeout=60)
        finally:
            pool.close()

    def test_server_threads_restarts_through_config(self, compiled):
        injector = FaultInjector(FaultPlan().crash_worker(1, at=1))
        with InferenceServer(
            compiled,
            serving=ServeConfig(
                num_workers=2, max_batch_size=1, injector=injector
            ),
        ) as server:
            session = Session(compiled)
            for request in _requests(compiled.graph, 6):
                assert_results_identical(
                    session.run(request), server.infer(request)
                )
            assert server.stats()["pool"]["total_restarts"] == 1


# ======================================================================
# Request deadlines
# ======================================================================
class TestDeadlines:
    def test_queued_request_is_shed_typed(self):
        # A downstream that never fills the batch: the lone request
        # sits in the queue until its deadline, then sheds typed.
        from repro.serve import BatchScheduler

        calls = []

        def submit(inputs):
            from concurrent.futures import Future

            calls.append(inputs)
            future = Future()
            future.set_result(None)
            return future

        scheduler = BatchScheduler(
            submit, max_batch_size=8, max_wait_ms=10_000.0,
            pi_names=frozenset(["a"]),
        )
        try:
            started = time.monotonic()
            future = scheduler.submit(
                {"a": np.zeros(1, dtype=np.uint64)}, deadline_ms=25.0
            )
            with pytest.raises(DeadlineExceeded) as excinfo:
                future.result(timeout=30)
            waited = (time.monotonic() - started) * 1e3
            assert excinfo.value.deadline_ms == 25.0
            assert excinfo.value.waited_ms >= 24.0
            # Shed within one scheduler tick of expiry, not at the
            # 10-second fill deadline.
            assert waited < 5_000.0
            assert scheduler.stats.expired == 1
            assert calls == []  # never dispatched
        finally:
            scheduler.close()

    def test_deadline_validation(self, compiled):
        with InferenceServer(compiled) as server:
            with pytest.raises(ValueError):
                server.submit(
                    _requests(compiled.graph, 1)[0], deadline_ms=0.0
                )
        with pytest.raises(ValueError):
            ServeConfig(default_deadline_ms=-1.0)

    def test_generous_deadline_completes(self, compiled):
        session = Session(compiled)
        with InferenceServer(
            compiled, serving=ServeConfig(default_deadline_ms=60_000.0)
        ) as server:
            for request in _requests(compiled.graph, 4):
                assert_results_identical(
                    session.run(request), server.infer(request)
                )
            assert server.stats()["scheduler"]["expired"] == 0

    def test_expired_never_batched_with_live(self, compiled):
        # An expired request must not ride along inside a later batch.
        with InferenceServer(
            compiled,
            serving=ServeConfig(max_batch_size=4, max_wait_ms=10_000.0),
        ) as server:
            request = _requests(compiled.graph, 1)[0]
            doomed = server.submit(request, deadline_ms=20.0)
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=30)
            # A fresh request after the shed still completes cleanly.
            live = [server.submit(request) for _ in range(4)]
            session = Session(compiled)
            expected = session.run(request)
            for future in live:
                assert_results_identical(
                    expected, future.result(timeout=60)
                )
            stats = server.stats()["scheduler"]
            assert stats["expired"] == 1


# ======================================================================
# Client resilience
# ======================================================================
class TestRetryPolicy:
    def test_deterministic_backoff(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_s=0.01, multiplier=2.0,
            max_backoff_s=0.05,
        )
        assert [policy.delay(k) for k in range(5)] == [
            0.01, 0.02, 0.04, 0.05, 0.05,
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCircuitBreaker:
    def test_open_half_open_close_cycle(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, reset_after_s=1.0,
            clock=lambda: clock[0],
        )
        assert breaker.state == "closed"
        breaker.check()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen) as excinfo:
            breaker.check()
        assert excinfo.value.retry_after > 0
        clock[0] = 1.5  # window elapsed: half-open probe allowed
        assert breaker.state == "half-open"
        breaker.check()  # the probe passes the gate
        with pytest.raises(CircuitOpen):
            breaker.check()  # concurrent call fails fast mid-probe
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.check()

    def test_failed_probe_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_after_s=1.0,
            clock=lambda: clock[0],
        )
        breaker.record_failure()
        clock[0] = 1.5
        breaker.check()  # probe
        breaker.record_failure()  # probe failed
        with pytest.raises(CircuitOpen):
            breaker.check()

    def test_breaker_quarantines_dead_node(self):
        # Nothing listens on this port: connections fail instantly.
        client = FabricClient(
            "http://127.0.0.1:9",  # discard port, never listening
            timeout=0.2,
            breaker=CircuitBreaker(failure_threshold=1, reset_after_s=60.0),
        )
        with pytest.raises(OSError):
            client.infer({"a": np.zeros(1, dtype=np.uint64)})
        with pytest.raises(CircuitOpen):
            client.infer({"a": np.zeros(1, dtype=np.uint64)})


# ======================================================================
# Fabric: health split, drain, 504, drop/sever recovery
# ======================================================================
@pytest.fixture()
def node(compiled):
    with FabricNode(
        compiled,
        serving=ServeConfig(num_workers=2, max_wait_ms=0.5),
        fabric=FabricConfig(),
    ) as running:
        yield running


class TestFabricResilience:
    def _get(self, node, path):
        conn = http.client.HTTPConnection(
            node.fabric.host, node.port, timeout=10
        )
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def test_liveness_and_readiness_split(self, node):
        import json

        status, _ = self._get(node, "/v1/health/live")
        assert status == 200
        status, _ = self._get(node, "/v1/health/ready")
        assert status == 200
        status, body = self._get(node, "/v1/health")
        assert status == 200
        assert json.loads(body)["ready"] is True

    def test_draining_node_rejects_typed(self, compiled):
        import json

        node = FabricNode(
            compiled, serving=ServeConfig(num_workers=1)
        ).start()
        try:
            node._draining = True  # flip readiness without stopping
            status, body = self._get(node, "/v1/health/ready")
            assert status == 503
            assert json.loads(body)["reason"] == "draining"
            status, _ = self._get(node, "/v1/health/live")
            assert status == 200  # alive: supervisors must not restart
            client = FabricClient(node.url)
            # health() tolerates the 503 and returns the document.
            assert client.health()["ready"] is False
            with pytest.raises(FabricRejected) as excinfo:
                client.infer(
                    random_stimulus(compiled.graph, array_size=1, seed=0)
                )
            assert "draining" in str(excinfo.value)
            client.close()
        finally:
            node._draining = False
            node.stop()

    def test_drain_finishes_inflight(self, compiled):
        node = FabricNode(
            compiled, serving=ServeConfig(num_workers=2)
        ).start()
        client = FabricClient(node.url)
        request = random_stimulus(compiled.graph, array_size=2, seed=1)
        expected = Session(compiled).run(request)
        results = []

        def call():
            results.append(client.infer(request))

        try:
            worker = threading.Thread(target=call)
            worker.start()
            worker.join(timeout=60)
            node.drain(timeout=10)
            assert node.draining
            assert len(results) == 1
            assert_results_identical(expected, results[0])
        finally:
            client.close()
            node.stop()

    def test_deadline_504_surfaces_typed(self, node, compiled):
        client = FabricClient(node.url)
        request = random_stimulus(compiled.graph, array_size=1, seed=2)
        # Sanity: without a deadline the same request completes.
        assert_results_identical(
            Session(compiled).run(request), client.infer(request)
        )
        with pytest.raises(DeadlineExceeded) as excinfo:
            # 1 microsecond: expired before the scheduler can collect.
            client.infer(request, deadline_ms=0.001)
        assert excinfo.value.deadline_ms == 0.001
        assert node.stats()["deadline_504"] >= 1
        client.close()

    def test_dropped_response_recovers_via_retry(self, compiled):
        injector = FaultInjector(FaultPlan().drop_response(at=1))
        node = FabricNode(
            compiled,
            serving=ServeConfig(num_workers=1, injector=injector),
        ).start()
        client = FabricClient(
            node.url,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.001),
        )
        try:
            session = Session(compiled)
            for request in _requests(compiled.graph, 4):
                assert_results_identical(
                    session.run(request), client.infer(request)
                )
            # The drop fired (and was recovered — by the connection
            # redial or the retry policy, whichever got there first).
            assert injector.event_log() == [
                ("node.response", 1, "drop_response", 0.0)
            ]
        finally:
            client.close()
            node.stop()

    def test_severed_client_recovers_via_retry(self, node, compiled):
        injector = FaultInjector(FaultPlan().sever_connection(at=0))
        client = FabricClient(
            node.url,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.001),
            injector=injector,
        )
        try:
            request = random_stimulus(compiled.graph, array_size=1, seed=3)
            assert_results_identical(
                Session(compiled).run(request), client.infer(request)
            )
            assert client.retries == 1
        finally:
            client.close()

    def test_sever_without_retry_raises_transport_error(self, node):
        injector = FaultInjector(FaultPlan().sever_connection(at=0))
        client = FabricClient(node.url, injector=injector)
        with pytest.raises(OSError):
            client.infer({"a": np.zeros(1, dtype=np.uint64)})
        client.close()


# ======================================================================
# Corrupt store blobs
# ======================================================================
class TestCorruptBlobRecovery:
    def test_retry_once_then_succeed(self, compiled):
        from repro.artifact import ExecutableArtifact

        artifact = ExecutableArtifact.from_program(compiled)
        with FabricNode() as peer:
            peer.store.put_bytes("blob", artifact.to_bytes())
            injector = FaultInjector(FaultPlan().corrupt_blob(at=0))
            remote = HTTPStoreBackend(peer.store_url, injector=injector)
            loaded = remote.get("blob")
            assert loaded is not None
            assert loaded.fingerprint == artifact.fingerprint
            assert remote.corrupt_fetches == 1
            remote.close()

    def test_persistent_corruption_quarantines_not_deletes(self, compiled):
        from repro.artifact import ExecutableArtifact

        artifact = ExecutableArtifact.from_program(compiled)
        with FabricNode() as peer:
            peer.store.put_bytes("blob", artifact.to_bytes())
            plan = FaultPlan().corrupt_blob(at=0).corrupt_blob(at=1)
            remote = HTTPStoreBackend(
                peer.store_url, injector=FaultInjector(plan)
            )
            assert remote.get("blob") is None
            assert remote.corrupt_fetches == 2
            # Quarantined locally: the next get misses fast, without
            # another download.
            reads_before = remote.stats.hits
            assert remote.get("blob") is None
            assert remote.stats.hits == reads_before
            # The peer's copy was NEVER deleted.
            assert peer.store.get_bytes("blob") is not None
            remote.close()

    def test_memory_backend_corruption_counts(self):
        injector = FaultInjector(
            FaultPlan().corrupt_blob(at=0).corrupt_blob(at=1)
        )
        store = MemoryStoreBackend(injector=injector)
        store.put_bytes("k", b"not-an-artifact")
        assert store.get("k") is None  # undecodable either way
        # Blob at rest intact (only the handed-back bytes were flipped).
        store2 = MemoryStoreBackend()
        store2.put_bytes("k", b"payload")
        assert store2.get_bytes("k") == b"payload"


# ======================================================================
# The chaos property: typed failure or bit-identical success
# ======================================================================
class TestChaosProperty:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_every_request_bit_identical_or_typed_failure(
        self, compiled_chaos, seed
    ):
        compiled, expected, requests = compiled_chaos
        plan = FaultPlan.seeded(
            seed,
            requests=len(requests),
            workers=2,
            crashes=1,
            drop_rate=0.1,
            severs=1,
        )
        injector = FaultInjector(plan)
        node = FabricNode(
            compiled,
            serving=ServeConfig(
                num_workers=2,
                max_wait_ms=0.5,
                default_deadline_ms=30_000.0,
                injector=injector,
            ),
        ).start()
        client = FabricClient(
            node.url,
            retry=RetryPolicy(max_attempts=4, backoff_s=0.001),
            breaker=CircuitBreaker(failure_threshold=8),
            injector=injector,
        )
        try:
            outcomes = []
            for want, request in zip(expected, requests):
                try:
                    got = client.infer(request)
                except (DeadlineExceeded, FabricRejected,
                        CircuitOpen) as exc:
                    outcomes.append(type(exc).__name__)
                else:
                    assert_results_identical(want, got)
                    outcomes.append("ok")
            # With bounded retries the plan's chaos is absorbable:
            # nothing may fail *untyped*, and most requests succeed.
            assert outcomes.count("ok") >= len(requests) - 2
        finally:
            client.close()
            node.stop()

    @pytest.fixture(scope="class")
    def compiled_chaos(self):
        g = random_dag(5, 40, 2, seed=3)
        compiled = compile_ffcl(g, SMALL).program
        session = Session(compiled)
        requests = _requests(compiled.graph, 10)
        expected = [session.run(r) for r in requests]
        return compiled, expected, requests
