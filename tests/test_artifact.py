"""Tests for the ahead-of-time executable artifact subsystem.

The load-bearing property: **serialize → deserialize → bit-identical
execution** — a deserialized :class:`ExecutableArtifact` produces exactly
the outputs *and* run statistics of the in-memory compile, on both
engines, for every model workload; encoding is deterministic and the
content fingerprints (workload and artifact) survive the round trip.
On top of the format sit the disk tiers: a cold-process
:class:`ProgramCache` over a warm :class:`ArtifactStore` must resolve its
workloads with **zero compile passes**, and the spawn worker backend must
serve bit-identically from shipped artifact bytes.
"""

import json
import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.artifact import (
    ArtifactError,
    ArtifactStore,
    ExecutableArtifact,
    FORMAT_VERSION,
    SINGLE_PROGRAM_VERSION,
    ProbeSet,
    store_key,
)
from repro.artifact.codec import (
    ArtifactDecodeError,
    decode_snapshot,
    encode_snapshot,
    pack_container,
    unpack_container,
)
from repro.compiler import PassCache, graph_fingerprint
from repro.core import LPUConfig, compile_ffcl
from repro.core.schedule import RuntimeSchedule
from repro.core.trace import (
    clear_lowering_cache,
    lower_program,
    lowering_cache_stats,
)
from repro.engine import Session, create_engine
from repro.lpu import evaluate_graph, random_stimulus
from repro.models import (
    jsc_l_workload,
    jsc_m_workload,
    layer_block,
    lenet5_workload,
    mlpmixer_b4_workload,
    mlpmixer_s4_workload,
    nid_workload,
    vgg16_workload,
)
from repro.netlist import cells, random_dag, random_tree
from repro.netlist.graph import LogicGraph
from repro.serve import InferenceServer, ProgramCache, naive_serve

SMALL = LPUConfig(num_lpvs=4, lpes_per_lpv=8)
TINY = LPUConfig(num_lpvs=2, lpes_per_lpv=4)

MODEL_FACTORIES = [
    vgg16_workload,
    lenet5_workload,
    mlpmixer_s4_workload,
    mlpmixer_b4_workload,
    nid_workload,
    jsc_m_workload,
    jsc_l_workload,
]


def roundtrip(result) -> ExecutableArtifact:
    """compile result -> artifact -> bytes -> artifact."""
    return ExecutableArtifact.from_bytes(result.to_artifact().to_bytes())


def assert_identical_execution(program_a, program_b, seed=0, array_size=3):
    """Both programs execute identically on both engines (+ functional)."""
    stim = random_stimulus(program_a.graph, array_size=array_size, seed=seed)
    reference = evaluate_graph(program_a.graph, stim)
    for engine in ("cycle", "trace"):
        got = create_engine(engine, program_b).run(stim)
        ref = create_engine(engine, program_a).run(stim)
        assert set(got.outputs) == set(reference)
        for name, word in reference.items():
            assert np.array_equal(got.outputs[name], word), (engine, name)
        assert (
            got.macro_cycles,
            got.clock_cycles,
            got.compute_instructions_executed,
            got.switch_routes,
            got.peak_buffer_words,
            got.buffer_writes,
        ) == (
            ref.macro_cycles,
            ref.clock_cycles,
            ref.compute_instructions_executed,
            ref.switch_routes,
            ref.peak_buffer_words,
            ref.buffer_writes,
        ), engine


# ----------------------------------------------------------------------
# Container
# ----------------------------------------------------------------------
class TestContainer:
    def test_pack_unpack(self):
        header = {"x": 1, "nested": {"a": [1, 2]}}
        arrays = {"t": np.arange(7, dtype=np.int64)}
        data = pack_container(header, arrays)
        got_header, got_arrays = unpack_container(data)
        assert got_header == header
        assert np.array_equal(got_arrays["t"], arrays["t"])

    def test_deterministic_bytes(self):
        header = {"b": 2, "a": 1}
        arrays = {"t": np.arange(4, dtype=np.uint32)}
        assert pack_container(header, arrays) == pack_container(
            dict(reversed(list(header.items()))), arrays
        )

    def test_garbage_rejected(self):
        with pytest.raises(ArtifactDecodeError):
            unpack_container(b"not a zip at all")

    def test_not_an_artifact(self):
        data = pack_container({"kind": "something-else"}, {})
        with pytest.raises(ArtifactError, match="magic"):
            ExecutableArtifact.from_bytes(data)

    def test_version_gate(self):
        g = random_dag(4, 20, 1, seed=0)
        art = compile_ffcl(g, TINY).to_artifact()
        header, arrays = art._encode()
        header["format_version"] = FORMAT_VERSION + 1
        from repro.artifact.codec import content_fingerprint

        header["fingerprint"] = content_fingerprint(header, arrays)
        with pytest.raises(ArtifactError, match="reader registry"):
            ExecutableArtifact.from_bytes(pack_container(header, arrays))

    def test_corruption_detected(self):
        g = random_dag(4, 20, 1, seed=0)
        data = bytearray(compile_ffcl(g, TINY).to_artifact().to_bytes())
        # Flip one byte somewhere in the middle of the payload.
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(ArtifactError):
            ExecutableArtifact.from_bytes(bytes(data))


# ----------------------------------------------------------------------
# Format round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_bit_identical_execution_and_fingerprints(self):
        g = random_dag(6, 60, 3, seed=5)
        result = compile_ffcl(g, SMALL)
        art = roundtrip(result)
        assert_identical_execution(result.program, art.program)
        assert graph_fingerprint(art.program.graph) == graph_fingerprint(
            result.program.graph
        )
        assert art.workload_fingerprint == graph_fingerprint(g)

    def test_reencoding_is_byte_stable(self):
        g = random_dag(5, 50, 2, seed=9)
        art = compile_ffcl(g, SMALL).to_artifact()
        data = art.to_bytes()
        again = ExecutableArtifact.from_bytes(data)
        assert again.to_bytes() == data
        assert again.fingerprint == art.fingerprint

    def test_runtime_schedule_surface(self):
        g = random_dag(5, 40, 2, seed=3)
        result = compile_ffcl(g, TINY)
        art = roundtrip(result)
        schedule = art.program.schedule
        assert isinstance(schedule, RuntimeSchedule)
        assert schedule.makespan == result.schedule.makespan
        assert schedule.base_address == result.schedule.base_address
        assert schedule.queue_depth == result.schedule.queue_depth
        assert schedule.circulations == result.schedule.circulations
        assert (
            schedule.total_clock_cycles == result.schedule.total_clock_cycles
        )
        for cycle in range(schedule.makespan):
            for lpv in range(TINY.n):
                assert schedule.address_of(cycle, lpv) == \
                    result.schedule.address_of(cycle, lpv)

    def test_deep_circulating_workload(self):
        g = random_tree(128, seed=1)  # depth 7 > n = 2: circulation paths
        result = compile_ffcl(g, TINY)
        assert result.metrics.circulations > 0
        assert_identical_execution(result.program, roundtrip(result).program)

    def test_po_aliased_to_pi_and_const(self):
        g = LogicGraph()
        a = g.add_input("a")
        b = g.add_input("b")
        g.set_output("pass", a)
        g.set_output("zero", g.add_const(0))
        g.set_output("y", g.add_gate(cells.AND, a, b))
        result = compile_ffcl(g, TINY)
        assert_identical_execution(result.program, roundtrip(result).program)

    def test_without_trace_tables(self):
        g = random_dag(5, 30, 2, seed=2)
        result = compile_ffcl(g, TINY)
        art = ExecutableArtifact.from_bytes(
            ExecutableArtifact.from_compile(result, lower=False).to_bytes()
        )
        assert art.trace is None
        assert_identical_execution(result.program, art.program)
        assert art.trace_program().compute_instructions == \
            lower_program(result.program).compute_instructions

    def test_metadata_survives(self):
        g = random_dag(5, 30, 2, seed=7)
        result = compile_ffcl(g, TINY)
        art = roundtrip(result)
        assert art.producer == f"repro {repro.__version__}"
        assert art.pipeline == "+".join(
            record.name for record in result.pass_records
        )
        assert art.metrics == result.metrics.as_dict()
        summary = art.summary()
        assert summary["format_version"] == SINGLE_PROGRAM_VERSION
        assert summary["graph"]["gates"] == result.program.graph.num_gates
        json.dumps(summary)  # the whole summary is JSON-able

    def test_supplied_trace_must_match_program(self):
        g = random_dag(5, 30, 2, seed=2)
        a = compile_ffcl(g, TINY)
        b = compile_ffcl(g, SMALL)
        with pytest.raises(ValueError, match="different program"):
            ExecutableArtifact.from_program(
                a.program, trace=lower_program(b.program)
            )

    def test_codegen_free_pipeline_rejected(self):
        g = random_dag(5, 30, 2, seed=2)
        result = compile_ffcl(g, TINY, generate_code=False)
        with pytest.raises(ValueError, match="no program"):
            result.to_artifact()

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=4),
        m=st.integers(min_value=2, max_value=8),
    )
    def test_roundtrip_property(self, seed, n, m):
        """serialize -> deserialize -> bit-identical execution and equal
        fingerprints, across random workloads and LPU shapes."""
        g = random_dag(5, 40, 2, seed=seed)
        result = compile_ffcl(g, LPUConfig(num_lpvs=n, lpes_per_lpv=m))
        art = result.to_artifact()
        data = art.to_bytes()
        got = ExecutableArtifact.from_bytes(data)
        assert got.fingerprint == art.fingerprint
        assert got.to_bytes() == data
        assert graph_fingerprint(got.program.graph) == graph_fingerprint(
            result.program.graph
        )
        assert_identical_execution(
            result.program, got.program, seed=seed, array_size=2
        )


class TestModelWorkloadRoundTrip:
    @pytest.mark.parametrize(
        "factory", MODEL_FACTORIES, ids=lambda f: f.__name__
    )
    def test_roundtrip_bit_identical(self, factory):
        """All 7 model workloads: deserialized artifacts execute exactly
        like the in-memory compile on both engines."""
        model = factory()
        layer = min(model.layers, key=lambda l: (l.fan_in, l.num_neurons))
        block, _ = layer_block(layer, sample_neurons=2, seed=0)
        result = compile_ffcl(block, SMALL)
        art = roundtrip(result)
        assert art.workload_fingerprint == graph_fingerprint(block)
        assert_identical_execution(result.program, art.program)


# ----------------------------------------------------------------------
# Engine / session integration
# ----------------------------------------------------------------------
class TestSessionIntegration:
    def test_session_from_artifact_skips_compile_and_lowering(self):
        g = random_dag(5, 40, 2, seed=4)
        result = compile_ffcl(g, TINY)
        data = result.to_artifact().to_bytes()
        clear_lowering_cache()
        art = ExecutableArtifact.from_bytes(data)
        session = Session(art, engine="trace")
        assert session.compile_result is None
        assert session.artifact is art
        # The embedded tables were adopted: no lowering was performed.
        assert lowering_cache_stats()["misses"] == 0
        assert session.engine.trace is art.trace
        stim = random_stimulus(g, array_size=2, seed=1)
        ref = evaluate_graph(g, stim)
        out = session.run(stim)
        for name, word in ref.items():
            assert np.array_equal(out.outputs[name], word)

    def test_session_artifact_rejects_compile_kwargs(self):
        g = random_dag(5, 30, 2, seed=2)
        art = compile_ffcl(g, TINY).to_artifact()
        with pytest.raises(ValueError, match="meaningless"):
            Session(art, merge=False)
        with pytest.raises(ValueError, match="its own config"):
            Session(art, SMALL)
        assert Session(art, TINY).config == TINY

    def test_create_engine_accepts_artifact(self):
        g = random_dag(5, 30, 2, seed=2)
        art = roundtrip(compile_ffcl(g, TINY))
        trace_engine = create_engine("trace", art)
        assert trace_engine.trace is art.trace
        cycle_engine = create_engine("cycle", art)
        assert cycle_engine.program is art.program

    def test_package_pass(self):
        from repro.compiler import PIPELINES, compile_with_pipeline

        g = random_dag(5, 30, 2, seed=6)
        result = compile_with_pipeline(
            g, TINY, pipeline=list(PIPELINES["paper"]) + ["package"]
        )
        assert isinstance(result.artifact, ExecutableArtifact)
        assert result.artifact.pipeline.endswith("+package")
        assert result.to_artifact() is result.artifact  # memoized
        assert_identical_execution(
            result.program, result.artifact.program
        )


# ----------------------------------------------------------------------
# ArtifactStore
# ----------------------------------------------------------------------
class TestArtifactStore:
    def test_put_get(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        g = random_dag(5, 30, 2, seed=1)
        art = compile_ffcl(g, TINY).to_artifact()
        key = store_key("test", 1)
        assert store.get(key) is None
        store.put(key, art)
        assert store.contains(key)
        got = store.get(key)
        assert got is not None and got.fingerprint == art.fingerprint
        assert store.keys() == [key]
        assert len(store) == 1

    def test_corrupt_blob_is_quarantined(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        key = store_key("corrupt")
        store.put_bytes(key, b"garbage bytes")
        assert store.get(key) is None
        assert store.stats.corrupt == 1
        assert not store.contains(key)  # moved aside, slot reusable

    def test_invalid_key_rejected(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        with pytest.raises(ValueError, match="invalid store key"):
            store.path_for("../escape")

    def test_clear(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        store.put_bytes(store_key("a"), b"x")
        store.put_bytes(store_key("b"), b"y")
        assert len(store) == 2
        store.clear()
        assert len(store) == 0


class TestStoreEviction:
    def _put(self, store, name, payload, mtime):
        path = store.put_bytes(store_key(name), payload)
        os.utime(path, (mtime, mtime))
        return path

    def test_entries_oldest_first_with_sizes(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        self._put(store, "new", b"n" * 10, 2_000)
        self._put(store, "old", b"o" * 20, 1_000)
        entries = store.entries()
        assert [e.size for e in entries] == [20, 10]  # oldest first
        assert entries[0].mtime < entries[1].mtime
        assert store.total_bytes() == 30
        assert all(e.suffix == ".lpa" for e in entries)

    def test_prune_evicts_lru_by_mtime(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        self._put(store, "a", b"a" * 40, 1_000)  # oldest
        self._put(store, "b", b"b" * 40, 2_000)
        self._put(store, "c", b"c" * 40, 3_000)  # newest
        evicted = store.prune(max_bytes=90)
        assert [e.key for e in evicted] == [store_key("a")]
        assert store.total_bytes() == 80
        assert store.get_bytes(store_key("a")) is None
        assert store.get_bytes(store_key("c")) == b"c" * 40
        assert store.stats.evictions == 1
        assert store.stats.bytes_evicted == 40

    def test_max_bytes_budget_enforced_on_write(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"), max_bytes=100)
        for i in range(6):
            path = store.put_bytes(store_key(f"blob{i}"), b"x" * 40)
            os.utime(path, (1_000 + i, 1_000 + i))
        assert store.total_bytes() <= 100
        # The newest blobs survive.
        assert store.get_bytes(store_key("blob5")) == b"x" * 40
        assert store.get_bytes(store_key("blob0")) is None
        assert store.stats.evictions >= 1

    def test_oversized_write_never_evicts_its_own_blob(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"), max_bytes=50)
        self._put(store, "old", b"o" * 30, 1_000)
        path = store.put_bytes(store_key("big"), b"z" * 200)
        # The budget-buster evicted everything else but kept itself.
        assert os.path.exists(path)
        assert store.get_bytes(store_key("big")) == b"z" * 200
        assert store.get_bytes(store_key("old")) is None

    def test_prune_skips_inflight_temp_files(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        self._put(store, "a", b"a" * 10, 1_000)
        shard_dir = os.path.dirname(store.path_for(store_key("a")))
        tmp = os.path.join(shard_dir, "whatever.lpa.tmp.123.456.abcd")
        with open(tmp, "wb") as handle:
            handle.write(b"partial")
        assert all(".tmp." not in e.path for e in store.entries())
        assert store.prune(max_bytes=0)  # evicts the real blob only
        assert os.path.exists(tmp)  # the in-flight write is untouched

    def test_read_refreshes_lru_order(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        self._put(store, "hot", b"h" * 40, 1_000)   # oldest write...
        self._put(store, "cold", b"c" * 40, 2_000)
        assert store.get_bytes(store_key("hot")) is not None  # ...but read
        evicted = store.prune(max_bytes=40)
        assert [e.key for e in evicted] == [store_key("cold")]
        assert store.get_bytes(store_key("hot")) == b"h" * 40

    def test_prune_reclaims_stale_temp_files(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        self._put(store, "a", b"a" * 10, 1_000)
        shard_dir = os.path.dirname(store.path_for(store_key("a")))
        stale = os.path.join(shard_dir, "dead.lpa.tmp.1.2.feed")
        with open(stale, "wb") as handle:
            handle.write(b"orphan")
        os.utime(stale, (1_000, 1_000))  # writer died long ago
        store.prune(max_bytes=1_000_000)  # under budget: no eviction
        assert not os.path.exists(stale)
        assert store.get_bytes(store_key("a")) is not None

    def test_prune_zero_empties_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        self._put(store, "a", b"a" * 10, 1_000)
        self._put(store, "b", b"b" * 10, 2_000)
        evicted = store.prune(max_bytes=0)
        assert len(evicted) == 2
        assert store.total_bytes() == 0

    def test_prune_without_budget_is_noop(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        self._put(store, "a", b"a" * 10, 1_000)
        assert store.prune() == []
        assert store.total_bytes() == 10

    def test_store_cli_list_and_prune(self, tmp_path, capsys):
        from repro.cli import main

        store = ArtifactStore(str(tmp_path / "store"))
        self._put(store, "a", b"a" * 64, 1_000)
        self._put(store, "b", b"b" * 64, 2_000)
        root = str(tmp_path / "store")
        assert main(["store", "list", root, "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["count"] == 2 and listing["total_bytes"] == 128
        assert main(
            ["store", "prune", root, "--max-bytes", "64", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["evicted_bytes"] == 64
        assert report["remaining_bytes"] == 64
        assert main(["store", "list", root]) == 0
        assert "1 blobs" in capsys.readouterr().out

    def test_cli_size_spec_parsing(self):
        from repro.cli import _parse_size

        assert _parse_size("1048576") == 1 << 20
        assert _parse_size("512K") == 512 << 10
        assert _parse_size("64M") == 64 << 20
        assert _parse_size("2G") == 2 << 30
        assert _parse_size("1.5k") == 1536
        with pytest.raises(Exception, match="not a size"):
            _parse_size("lots")


# ----------------------------------------------------------------------
# Cache disk tiers
# ----------------------------------------------------------------------
class TestProgramCacheDiskTier:
    def test_cold_restart_zero_compile_passes(self, tmp_path):
        """A fresh cache over a warm store never compiles: no
        CompileResult, no pass-cache lookups, disk hit counted."""
        store = ArtifactStore(str(tmp_path / "store"))
        g = random_dag(6, 60, 3, seed=13)

        warm = ProgramCache(store=store)
        first = warm.get_or_compile(g, SMALL)
        assert first.compile_result is not None
        assert warm.stats.disk_stores == 1
        assert len(store) == 1

        cold = ProgramCache(store=store)  # "new process"
        entry = cold.get_or_compile(g, SMALL)
        assert entry.compile_result is None
        assert entry.artifact is not None
        assert cold.stats.disk_hits == 1
        assert cold.pass_cache.stats.lookups == 0
        assert_identical_execution(first.program, entry.program)

    def test_disk_tier_is_engine_independent(self, tmp_path):
        """One stored blob serves both engines (the key excludes the
        engine; the artifact carries program + trace)."""
        store = ArtifactStore(str(tmp_path / "store"))
        g = random_dag(5, 40, 2, seed=17)
        ProgramCache(store=store).get_or_compile(g, TINY, engine="trace")
        assert len(store) == 1
        cold = ProgramCache(store=store)
        entry = cold.get_or_compile(g, TINY, engine="cycle")
        assert entry.compile_result is None
        assert cold.stats.disk_hits == 1
        assert len(store) == 1

    def test_cycle_compile_stores_trace_embedded_blob(self, tmp_path):
        """Blobs always embed trace tables — a cycle-engine compile must
        not leave every future trace-engine cold start re-lowering."""
        store = ArtifactStore(str(tmp_path / "store"))
        g = random_dag(5, 40, 2, seed=18)
        ProgramCache(store=store).get_or_compile(g, TINY, engine="cycle")
        blob = store.get(store.keys()[0])
        assert blob is not None and blob.trace is not None
        clear_lowering_cache()
        cold = ProgramCache(store=store)
        entry = cold.get_or_compile(g, TINY, engine="trace")
        assert entry.compile_result is None
        assert entry.trace is not None
        # The embedded lowering was adopted: nothing was re-lowered.
        assert lowering_cache_stats()["misses"] == 0

    def test_distinct_options_get_distinct_blobs(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        g = random_dag(5, 40, 2, seed=19)
        cache = ProgramCache(store=store)
        cache.get_or_compile(g, TINY)
        cache.get_or_compile(g, TINY, merge=False)
        cache.get_or_compile(g, SMALL)
        assert cache.stats.disk_stores == 3
        assert len(store) == 3

    def test_artifact_source_hits_without_compiling(self, tmp_path):
        g = random_dag(5, 40, 2, seed=23)
        art = roundtrip(compile_ffcl(g, TINY))
        cache = ProgramCache()
        entry = cache.get_or_compile(art, engine="trace")
        assert entry.program is art.program
        assert entry.artifact is art
        assert entry.trace is art.trace
        again = cache.get_or_compile(art, engine="trace")
        assert again is entry and cache.stats.hits == 1

    def test_pass_cache_disk_tier_shares_preprocessing(self, tmp_path):
        """A divergent compile (different policy) in a fresh process
        reuses every disk-codable pre-processing pass from the store."""
        store = ArtifactStore(str(tmp_path / "store"))
        g = random_dag(6, 60, 3, seed=29)
        ProgramCache(store=store).get_or_compile(g, SMALL)

        cold = ProgramCache(store=store)
        entry = cold.get_or_compile(g, SMALL, policy="sequential")
        assert entry.compile_result is not None  # disk miss: new options
        stats = cold.pass_cache.stats
        assert stats.disk_hits > 0
        # The shared pre-processing prefix came from disk: its records
        # report cache hits even though this process never compiled it.
        hit_names = [
            record.name
            for record in entry.compile_result.pass_records
            if record.cache_hit
        ]
        for name in ("rebalance", "simplify", "techmap", "balance",
                     "levelize"):
            assert name in hit_names


class TestPassCacheDiskTier:
    def test_snapshot_roundtrip_through_disk(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        g = random_dag(5, 50, 2, seed=31)
        first = PassCache(store=store)
        compile_ffcl(g, TINY, pass_cache=first)
        assert first.stats.disk_stores > 0

        second = PassCache(store=store)  # fresh memory tier
        result = compile_ffcl(g, TINY, pass_cache=second)
        assert second.stats.disk_hits > 0
        reference = compile_ffcl(g, TINY)
        assert_identical_execution(reference.program, result.program)

    def test_uncodable_snapshots_stay_memory_only(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        cache = PassCache(store=store)
        compile_ffcl(random_dag(5, 40, 2, seed=37), TINY, pass_cache=cache)
        # partition/merge/schedule/codegen snapshots are not disk-codable;
        # the codable passes are. ingest/package are not cacheable at all.
        assert 0 < cache.stats.disk_stores < cache.stats.misses

    def test_snapshot_codec_rejects_unknown_blob(self):
        with pytest.raises(ArtifactDecodeError):
            decode_snapshot(pack_container({"kind": "other"}, {}))

    def test_snapshot_codec_unsupported_value(self):
        assert encode_snapshot({"x": object()}) is None


# ----------------------------------------------------------------------
# Spawn worker backend
# ----------------------------------------------------------------------
class TestSpawnBackend:
    def test_spawn_pool_bit_identical(self):
        g = random_dag(5, 40, 2, seed=41)
        result = compile_ffcl(g, TINY)
        requests = [
            random_stimulus(g, array_size=2, seed=i) for i in range(3)
        ]
        direct = naive_serve(result.program, requests)
        with InferenceServer(
            result.program, num_workers=1, backend="spawn",
            max_batch_size=2, max_wait_ms=1.0,
        ) as server:
            assert server.pool.backend == "spawn"
            assert server.pool.artifact is not None
            served = server.map(requests)
        for got, ref in zip(served, direct):
            for name, word in ref.outputs.items():
                assert np.array_equal(got.outputs[name], word)
            assert got.macro_cycles == ref.macro_cycles

    def test_spawn_pool_reuses_cache_artifact(self, tmp_path):
        from repro.serve import WorkerPool

        store = ArtifactStore(str(tmp_path / "store"))
        g = random_dag(5, 30, 2, seed=43)
        cache = ProgramCache(store=store)
        entry = cache.get_or_compile(g, TINY)
        pool = WorkerPool(
            entry.program, num_workers=1, backend="spawn",
            artifact=entry.artifact,
        )
        try:
            assert pool.artifact is entry.artifact
            stim = random_stimulus(g, array_size=1, seed=0)
            ref = Session(entry.program).run(stim)
            got = pool.run(stim)
            for name, word in ref.outputs.items():
                assert np.array_equal(got.outputs[name], word)
        finally:
            pool.close()

    def test_spawn_rejects_foreign_artifact(self):
        from repro.serve import WorkerPool

        g = random_dag(5, 30, 2, seed=47)
        a = compile_ffcl(g, TINY)
        b = compile_ffcl(g, SMALL)
        with pytest.raises(ValueError, match="different program"):
            WorkerPool(
                a.program, backend="spawn", artifact=b.to_artifact()
            )

    def test_process_backend_resolves_by_start_method(self):
        import multiprocessing

        from repro.serve.pool import BACKENDS

        assert set(BACKENDS) == {"thread", "process", "fork", "spawn"}
        g = random_dag(4, 20, 1, seed=0)
        result = compile_ffcl(g, TINY)
        from repro.serve import WorkerPool

        expected = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        pool = WorkerPool(result.program, num_workers=1, backend="process")
        try:
            assert pool.backend == expected
        finally:
            pool.close()


# ----------------------------------------------------------------------
# CLI + version single-sourcing
# ----------------------------------------------------------------------
class TestCLI:
    @pytest.fixture()
    def netlist(self, tmp_path):
        from repro.netlist.verilog_writer import write_verilog

        path = tmp_path / "block.v"
        path.write_text(write_verilog(random_dag(6, 80, 3, seed=53)))
        return str(path)

    def test_version_flag(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_compile_write_inspect_simulate(self, capsys, tmp_path, netlist):
        from repro.cli import main

        out = str(tmp_path / "block.lpa")
        assert main(
            ["compile", netlist, "--lpvs", "4", "--lpes", "8", "-o", out]
        ) == 0
        assert os.path.exists(out)
        assert "wrote" in capsys.readouterr().out

        assert main(["inspect", out, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["format_version"] == SINGLE_PROGRAM_VERSION
        assert summary["trace"] is not None

        for engine in ("trace", "cycle"):
            assert main(
                ["simulate", "--artifact", out, "--engine", engine]
            ) == 0
            assert "== functional: True" in capsys.readouterr().out

    def test_compile_json_includes_artifact(self, capsys, tmp_path, netlist):
        from repro.cli import main

        out = str(tmp_path / "block.lpa")
        assert main(
            ["compile", netlist, "--lpvs", "4", "--lpes", "8",
             "-o", out, "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        art = ExecutableArtifact.load(out)
        assert data["artifact"]["fingerprint"] == art.fingerprint

    def test_simulate_requires_netlist_or_artifact(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="netlist or --artifact"):
            main(["simulate"])

    def test_serve_bench_from_artifact(self, capsys, tmp_path, netlist):
        from repro.cli import main

        out = str(tmp_path / "block.lpa")
        assert main(
            ["compile", netlist, "--lpvs", "4", "--lpes", "8", "-o", out]
        ) == 0
        capsys.readouterr()
        assert main(
            ["serve-bench", "--artifact", out, "--requests", "8",
             "--clients", "2", "--workers", "1", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["bit_identical"] is True
        assert report["artifact"] == out


class TestVersionSingleSourcing:
    def test_setup_py_reads_package_version(self):
        root = pathlib.Path(__file__).resolve().parents[1]
        text = (root / "setup.py").read_text()
        # No hard-coded version literal: setup.py must read __init__.py.
        assert 'version="' not in text.replace("__version__", "")
        proc = subprocess.run(
            [sys.executable, "setup.py", "--version"],
            cwd=str(root),
            capture_output=True,
            text=True,
            check=True,
        )
        assert proc.stdout.strip().splitlines()[-1] == repro.__version__


class TestProbeVectors:
    """Embedded known-answer probe vectors (``--probe-words``)."""

    @pytest.fixture(scope="class")
    def probed(self):
        g = random_dag(6, 40, 3, seed=21)
        result = compile_ffcl(g, SMALL)
        artifact = ExecutableArtifact.from_compile(
            result, probe_words=2, probe_seed=4
        )
        return result, artifact

    def test_probes_survive_roundtrip_deterministically(self, probed):
        _, artifact = probed
        assert artifact.probes is not None
        data = artifact.to_bytes()
        back = ExecutableArtifact.from_bytes(data)
        assert back.probes is not None
        assert back.to_bytes() == data
        assert back.probes.input_names == artifact.probes.input_names
        assert back.probes.output_names == artifact.probes.output_names
        assert np.array_equal(back.probes.inputs, artifact.probes.inputs)
        assert np.array_equal(back.probes.outputs, artifact.probes.outputs)
        assert back.probes.seed == 4
        assert back.fingerprint == artifact.fingerprint

    def test_probes_are_engine_free_functional_truth(self, probed):
        result, artifact = probed
        probes = artifact.probes
        reference = evaluate_graph(
            result.program.graph, probes.stimulus()
        )
        for i, name in enumerate(probes.output_names):
            assert np.array_equal(probes.outputs[i], reference[name])

    @pytest.mark.parametrize("engine", ["fused", "cycle"])
    def test_verify_probes_passes(self, probed, engine):
        _, artifact = probed
        back = ExecutableArtifact.from_bytes(artifact.to_bytes())
        report = back.verify_probes(engine=engine)
        assert report["passed"] is True
        assert report["engine"] == engine
        assert report["probe_samples"] == 128
        assert report["mismatches"] == []
        assert report["outputs_checked"] == len(
            back.probes.output_names
        )

    def test_verify_probes_detects_wrong_expectations(self, probed):
        import dataclasses

        _, artifact = probed
        flipped = artifact.probes.outputs.copy()
        flipped[0, 0] ^= np.uint64(1)
        tampered = dataclasses.replace(
            ExecutableArtifact.from_bytes(artifact.to_bytes()),
            probes=dataclasses.replace(
                artifact.probes, outputs=flipped
            ),
        )
        report = tampered.verify_probes()
        assert report["passed"] is False
        assert (
            artifact.probes.output_names[0] in report["mismatches"]
        )

    def test_verify_without_probes_raises(self):
        g = random_dag(5, 30, 2, seed=22)
        artifact = ExecutableArtifact.from_compile(compile_ffcl(g, SMALL))
        assert artifact.probes is None
        with pytest.raises(ArtifactError, match="probe"):
            artifact.verify_probes()

    def test_summary_reports_probe_shape(self, probed):
        _, artifact = probed
        summary = artifact.summary()
        assert summary["probes"] == {
            "words": 2, "samples": 128, "seed": 4,
        }

    def test_generate_is_seed_deterministic(self, probed):
        result, _ = probed
        a = ProbeSet.generate(result.program.graph, words=3, seed=9)
        b = ProbeSet.generate(result.program.graph, words=3, seed=9)
        c = ProbeSet.generate(result.program.graph, words=3, seed=10)
        assert np.array_equal(a.inputs, b.inputs)
        assert np.array_equal(a.outputs, b.outputs)
        assert not np.array_equal(a.inputs, c.inputs)

    def test_cli_inspect_verify(self, tmp_path, capsys):
        from repro.cli import main
        from repro.netlist.verilog_writer import write_verilog_file

        g = random_dag(6, 35, 3, seed=23)
        netlist = str(tmp_path / "probe_block.v")
        write_verilog_file(g, netlist)
        out = str(tmp_path / "probe_block.lpa")
        assert main(
            ["compile", netlist, "--lpvs", "4", "--lpes", "8",
             "-o", out, "--probe-words", "3"]
        ) == 0
        capsys.readouterr()
        assert main(["inspect", out, "--verify", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verification"]["passed"] is True
        assert summary["verification"]["method"] == "probe-replay"
        assert summary["probes"]["words"] == 3
