from setuptools import find_packages, setup

setup(
    name="repro-lpu",
    version="1.3.0",
    description=(
        "Reproduction of 'Algorithms and Hardware for Efficient Processing "
        "of Logic-based Neural Networks' (DAC 2023): FFCL-to-LPU compiler, "
        "cycle-accurate LPU model, vectorized trace engine, and a batched "
        "serving layer"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.20"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
