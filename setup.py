import pathlib
import re

from setuptools import find_packages, setup

# Single-sourced version: repro.__version__ is the one authority (also
# surfaced by the `repro --version` CLI flag).  Read textually so setup
# never imports the package (and its numpy dependency) at build time.
_INIT = pathlib.Path(__file__).parent / "src" / "repro" / "__init__.py"
_MATCH = re.search(
    r'^__version__ = "([^"]+)"', _INIT.read_text(encoding="utf-8"), re.M
)
if _MATCH is None:
    raise RuntimeError("cannot find __version__ in src/repro/__init__.py")

setup(
    name="repro-lpu",
    version=_MATCH.group(1),
    description=(
        "Reproduction of 'Algorithms and Hardware for Efficient Processing "
        "of Logic-based Neural Networks' (DAC 2023): FFCL-to-LPU compiler, "
        "cycle-accurate LPU model, vectorized trace engine, ahead-of-time "
        "executable artifacts, and a batched serving layer"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.20"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
